// Tests for the route service engine: snapshot store, sharded ledger,
// client population, workload generators, the RouteServer pipeline and
// its thread-count determinism contract, plus the BulletinBoard edge
// cases at the simulator/service boundary.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "agents/agent_simulator.h"
#include "agents/population.h"
#include "core/bulletin_board.h"
#include "core/fluid_simulator.h"
#include "equilibrium/metrics.h"
#include "net/flow.h"
#include "net/generators.h"
#include "service/service.h"
#include "util/rng.h"

namespace staleflow {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --------------------------------------------------------------- Population

TEST(Population, AllocatesAtLeastOneClientPerCommodity) {
  const Instance instance = shared_bottleneck();
  const FlowVector initial = FlowVector::uniform(instance);
  const Population population(instance, 5, initial.values());
  EXPECT_EQ(population.size(), 5u);
  std::vector<std::size_t> per_commodity(instance.commodity_count(), 0);
  for (std::size_t client = 0; client < population.size(); ++client) {
    ++per_commodity[population.commodity_of(client).index()];
  }
  for (std::size_t c = 0; c < per_commodity.size(); ++c) {
    EXPECT_GE(per_commodity[c], 1u);
    EXPECT_EQ(per_commodity[c], population.clients_of(CommodityId{c}));
  }
}

TEST(Population, RejectsFewerClientsThanCommodities) {
  const Instance instance = shared_bottleneck();  // 2 commodities
  const FlowVector initial = FlowVector::uniform(instance);
  EXPECT_THROW(Population(instance, 1, initial.values()),
               std::invalid_argument);
}

TEST(Population, EmpiricalFlowIsFeasibleAndTracksMigrations) {
  const Instance instance = braess(true);
  const FlowVector initial = FlowVector::uniform(instance);
  Population population(instance, 999, initial.values());
  EXPECT_TRUE(is_feasible(instance, population.empirical_flow(), 1e-9));

  const std::size_t before = population.local_path(0);
  const std::size_t target = before == 0 ? 1 : 0;
  const double flow_before =
      population.empirical_flow()[population.path_of(0).index()];
  population.migrate(0, target);
  EXPECT_EQ(population.local_path(0), target);
  EXPECT_TRUE(is_feasible(instance, population.empirical_flow(), 1e-9));
  const Commodity& commodity =
      instance.commodity(population.commodity_of(0));
  EXPECT_NEAR(
      population.empirical_flow()[commodity.paths[before].index()],
      flow_before - population.flow_of(0), 1e-12);
}

// ------------------------------------------------------------ SnapshotStore

TEST(SnapshotStore, EmptyUntilFirstPublish) {
  SnapshotStore store;
  EXPECT_EQ(store.acquire(), nullptr);
}

TEST(SnapshotStore, SwapKeepsOldSnapshotAliveForReaders) {
  const Instance instance = braess(true);
  const Policy policy = make_replicator_policy(instance);
  const FlowVector flow = FlowVector::uniform(instance);

  SnapshotStore store;
  store.publish(std::make_shared<BoardSnapshot>(instance, policy, 1, 0.0,
                                                flow.values()));
  const SnapshotPtr reader = store.acquire();
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->epoch(), 1u);

  store.publish(std::make_shared<BoardSnapshot>(instance, policy, 2, 0.1,
                                                flow.values()));
  // The old epoch stays valid for the reader that pinned it.
  EXPECT_EQ(reader->epoch(), 1u);
  EXPECT_EQ(store.acquire()->epoch(), 2u);
  EXPECT_DOUBLE_EQ(reader->board().posted_at(), 0.0);
}

TEST(SnapshotStore, ConcurrentReadersAndPublisher) {
  const Instance instance = braess(true);
  const Policy policy = make_replicator_policy(instance);
  const FlowVector flow = FlowVector::uniform(instance);

  SnapshotStore store;
  store.publish(std::make_shared<BoardSnapshot>(instance, policy, 0, 0.0,
                                                flow.values()));
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&store] {
      for (int i = 0; i < 2000; ++i) {
        const SnapshotPtr snapshot = store.acquire();
        ASSERT_NE(snapshot, nullptr);
        // The pinned snapshot is internally consistent at all times.
        ASSERT_EQ(snapshot->board().posted_at(),
                  0.1 * static_cast<double>(snapshot->epoch()));
      }
    });
  }
  for (std::uint64_t e = 1; e <= 500; ++e) {
    store.publish(std::make_shared<BoardSnapshot>(
        instance, policy, e, 0.1 * static_cast<double>(e), flow.values()));
  }
  for (std::thread& t : readers) t.join();
}

TEST(BoardSnapshot, CdfIsMonotoneAndEndsAtOne) {
  const Instance instance = uniform_parallel_links(8, 0.5, 1.0);
  const Policy policy = make_replicator_policy(instance);
  const FlowVector flow = FlowVector::uniform(instance);
  const BoardSnapshot snapshot(instance, policy, 0, 0.0, flow.values());
  const std::span<const double> cdf = snapshot.cdf(CommodityId{std::size_t{0}});
  ASSERT_EQ(cdf.size(), 8u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i], cdf[i - 1]);
  }
  EXPECT_GE(cdf.back(), 1.0);
}

// ----------------------------------------------------------------- FlowLedger

TEST(FlowLedger, FoldsShardsInOrderAndResets) {
  FlowLedger ledger(3, 4);
  std::vector<double> flow = {1.0, 2.0, 3.0};
  ledger.add(0, 0, +0.5);
  ledger.add(3, 0, -0.25);
  ledger.add(1, 2, +1.0);
  ledger.count_query(0, true);
  ledger.count_query(3, false);

  const FlowLedger::Totals totals = ledger.fold_into(flow);
  EXPECT_EQ(totals.queries, 2u);
  EXPECT_EQ(totals.migrations, 1u);
  EXPECT_DOUBLE_EQ(flow[0], 1.25);
  EXPECT_DOUBLE_EQ(flow[1], 2.0);
  EXPECT_DOUBLE_EQ(flow[2], 4.0);

  // Folding again is a no-op: the ledger reset.
  const FlowLedger::Totals empty = ledger.fold_into(flow);
  EXPECT_EQ(empty.queries, 0u);
  EXPECT_DOUBLE_EQ(flow[0], 1.25);
}

TEST(FlowLedger, RejectsZeroShards) {
  EXPECT_THROW(FlowLedger(3, 0), std::invalid_argument);
}

// ------------------------------------------------------------------ Workloads

TEST(Workload, PoissonIsDeterministicWithMeanNearRate) {
  const WorkloadPtr workload = poisson_workload(1000.0);
  Rng rng_a(5);
  Rng rng_b(5);
  const LoadFeedback none;
  double total = 0.0;
  for (std::uint64_t e = 0; e < 200; ++e) {
    const std::size_t a = workload->arrivals(e, 0.0, 0.1, none, rng_a);
    EXPECT_EQ(a, workload->arrivals(e, 0.0, 0.1, none, rng_b));
    total += static_cast<double>(a);
  }
  // Mean 100 per epoch; the average over 200 epochs concentrates.
  EXPECT_NEAR(total / 200.0, 100.0, 5.0);
}

TEST(Workload, PoissonDrawSmallAndLargeMeans) {
  Rng rng(11);
  double small = 0.0;
  double large = 0.0;
  for (int i = 0; i < 4000; ++i) {
    small += static_cast<double>(poisson_draw(2.0, rng));
    large += static_cast<double>(poisson_draw(400.0, rng));
  }
  EXPECT_NEAR(small / 4000.0, 2.0, 0.15);
  EXPECT_NEAR(large / 4000.0, 400.0, 4.0);
  EXPECT_EQ(poisson_draw(0.0, rng), 0u);
}

TEST(Workload, BurstyAlternatesRates) {
  const WorkloadPtr workload = bursty_workload(10000.0, 0.0, 2, 3);
  Rng rng(1);
  const LoadFeedback none;
  for (std::uint64_t e = 0; e < 10; ++e) {
    const std::size_t n = workload->arrivals(e, 0.0, 1.0, none, rng);
    if (e % 5 < 2) {
      EXPECT_GT(n, 0u) << "epoch " << e;
    } else {
      EXPECT_EQ(n, 0u) << "epoch " << e;
    }
  }
}

TEST(Workload, DiurnalPeaksMidDay) {
  const WorkloadPtr workload = diurnal_workload(1000.0, 0.9, 4.0);
  Rng rng(3);
  const LoadFeedback none;
  // Peak of sin at t = day/4 = 1.0; trough at t = 3.0.
  const std::size_t peak = workload->arrivals(0, 0.95, 0.1, none, rng);
  const std::size_t trough = workload->arrivals(0, 2.95, 0.1, none, rng);
  EXPECT_GT(peak, trough);
}

TEST(Workload, ClosedLoopIsConstant) {
  const WorkloadPtr workload = closed_loop_workload(123);
  Rng rng(1);
  const LoadFeedback none;
  for (std::uint64_t e = 0; e < 5; ++e) {
    EXPECT_EQ(workload->arrivals(e, 0.0, 0.1, none, rng), 123u);
  }
}

TEST(Workload, ClosedLoopLatencyShedsLoadUnderCongestion) {
  // 1000 clients, base think time 0.5: the first epoch (no served
  // latency yet) offers 1000 * 0.1 / 0.5 = 200 queries; a served median
  // of 0.5 halves the rate; rising latency sheds further load. No rng
  // draws — the feedback loop is fully deterministic.
  const WorkloadPtr workload = closed_loop_latency_workload(1000, 0.5);
  Rng rng(1);
  LoadFeedback feedback;
  EXPECT_EQ(workload->arrivals(0, 0.0, 0.1, feedback, rng), 200u);
  feedback.has_previous = true;
  feedback.route_p50 = 0.5;
  EXPECT_EQ(workload->arrivals(1, 0.1, 0.1, feedback, rng), 100u);
  feedback.route_p50 = 1.5;
  EXPECT_EQ(workload->arrivals(2, 0.2, 0.1, feedback, rng), 50u);
  EXPECT_EQ(workload->name(), "closed-loop-lat:1000,0.5");
  EXPECT_THROW(closed_loop_latency_workload(1000, 0.0),
               std::invalid_argument);
}

TEST(Workload, MakeWorkloadParsesAndRejects) {
  EXPECT_EQ(make_workload("poisson:500")->name(), "poisson:500");
  EXPECT_EQ(make_workload("bursty:10,1,5,5")->name(), "bursty:10,1,5,5");
  EXPECT_EQ(make_workload("diurnal:100,0.5,24")->name(),
            "diurnal:100,0.5,24");
  EXPECT_EQ(make_workload("closed-loop:42")->name(), "closed-loop:42");
  EXPECT_EQ(make_workload("closed-loop-lat:500,0.2")->name(),
            "closed-loop-lat:500,0.2");
  EXPECT_THROW(make_workload("poison:500"), std::invalid_argument);
  EXPECT_THROW(make_workload("poisson"), std::invalid_argument);
  EXPECT_THROW(make_workload("poisson:-3"), std::invalid_argument);
  EXPECT_THROW(make_workload("bursty:1,2,3"), std::invalid_argument);
  EXPECT_THROW(make_workload("closed-loop:nope"), std::invalid_argument);
  EXPECT_THROW(make_workload("closed-loop-lat:500"), std::invalid_argument);
  EXPECT_THROW(make_workload("closed-loop-lat:500,0"),
               std::invalid_argument);
}

// ---------------------------------------------------------------- RouteServer

RouteServerOptions small_options() {
  RouteServerOptions options;
  options.update_period = 0.1;
  options.epochs = 30;
  options.num_clients = 1000;
  options.shards = 8;
  options.threads = 1;
  options.seed = 17;
  options.record_latency = false;
  return options;
}

TEST(RouteServer, RejectsBadOptionsAtTheServiceBoundary) {
  const Instance instance = braess(true);
  const Policy policy = make_replicator_policy(instance);
  const WorkloadPtr workload = closed_loop_workload(100);
  RouteServer server(instance, policy, *workload);
  const FlowVector initial = FlowVector::uniform(instance);

  RouteServerOptions options = small_options();
  options.update_period = 0.0;
  EXPECT_THROW(server.run(initial, options), std::invalid_argument);
  options.update_period = -0.1;
  EXPECT_THROW(server.run(initial, options), std::invalid_argument);

  options = small_options();
  options.epochs = 0;
  EXPECT_THROW(server.run(initial, options), std::invalid_argument);

  options = small_options();
  options.shards = options.num_clients + 1;
  EXPECT_THROW(server.run(initial, options), std::invalid_argument);
  options.shards = 0;
  EXPECT_THROW(server.run(initial, options), std::invalid_argument);

  options = small_options();
  options.record_latency = true;
  options.latency_sample_every = 0;  // would be a modulo-by-zero
  EXPECT_THROW(server.run(initial, options), std::invalid_argument);

  options = small_options();
  FlowVector infeasible(instance);  // all-zero: violates demands
  EXPECT_THROW(server.run(infeasible, options), std::invalid_argument);
}

TEST(RouteServer, LatencyFeedbackClosesTheLoopDeterministically) {
  // The served p50 rises above zero immediately, so from epoch 1 on the
  // latency-fed fleet offers strictly less than its uncongested rate —
  // and the whole trajectory replays bit-for-bit.
  const Instance instance = braess(true);
  const Policy policy = make_replicator_policy(instance);
  const WorkloadPtr workload = closed_loop_latency_workload(4000, 0.1);
  RouteServerOptions options = small_options();
  options.epochs = 10;

  std::vector<std::size_t> reference;
  for (int repeat = 0; repeat < 2; ++repeat) {
    RouteServer server(instance, policy, *workload);
    const RouteServerResult result =
        server.run(FlowVector::uniform(instance), options);
    ASSERT_EQ(result.epochs.size(), 10u);
    // Epoch 0 pays no latency: 4000 * 0.1 / 0.1 = 4000 queries.
    EXPECT_EQ(result.epochs[0].queries, 4000u);
    for (std::size_t e = 1; e < result.epochs.size(); ++e) {
      EXPECT_LT(result.epochs[e].queries, 4000u) << e;
      EXPECT_GT(result.epochs[e].queries, 0u) << e;
    }
    if (repeat == 0) {
      for (const EpochSummary& epoch : result.epochs) {
        reference.push_back(epoch.queries);
      }
    } else {
      for (std::size_t e = 0; e < result.epochs.size(); ++e) {
        EXPECT_EQ(result.epochs[e].queries, reference[e]) << e;
      }
    }
  }
}

TEST(RouteServer, ServesEveryArrivalAndConservesFlow) {
  const Instance instance = braess(true);
  const Policy policy = make_replicator_policy(instance);
  const WorkloadPtr workload = closed_loop_workload(500);
  RouteServer server(instance, policy, *workload);

  const RouteServerOptions options = small_options();
  const RouteServerResult result =
      server.run(FlowVector::uniform(instance), options);

  EXPECT_EQ(result.total_queries, 500u * options.epochs);
  EXPECT_EQ(result.epochs.size(), options.epochs);
  EXPECT_TRUE(is_feasible(instance, result.final_flow.values(), 1e-7));
  EXPECT_GT(result.total_migrations, 0u);
  EXPECT_LE(result.total_migrations, result.total_queries);
  // The published snapshot advanced to the last fold.
  ASSERT_NE(server.snapshot(), nullptr);
  EXPECT_EQ(server.snapshot()->epoch(), options.epochs);
}

TEST(RouteServer, ClosesTheLoopTowardEquilibrium) {
  // Enough traffic per epoch for the replicator dynamics to descend: the
  // Wardrop gap at the end is well below the uniform split's.
  const Instance instance = braess(true);
  const Policy policy = make_replicator_policy(instance);
  const WorkloadPtr workload = closed_loop_workload(4000);
  RouteServer server(instance, policy, *workload);

  RouteServerOptions options = small_options();
  options.epochs = 60;
  options.num_clients = 4000;
  const FlowVector initial = FlowVector::uniform(instance);
  const double initial_gap = wardrop_gap(instance, initial.values());
  const RouteServerResult result = server.run(initial, options);

  EXPECT_LT(result.final_gap, 0.25 * initial_gap);
  // Telemetry is self-consistent.
  for (const EpochSummary& e : result.epochs) {
    EXPECT_GE(e.migration_rate, 0.0);
    EXPECT_LE(e.migration_rate, 1.0);
    EXPECT_GE(e.board_latency, 0.0);
    // Route-latency quantiles are populated (every query records one) and
    // ordered.
    EXPECT_GT(e.route_p50, 0.0);
    EXPECT_LE(e.route_p50, e.route_p99);
    EXPECT_LE(e.route_p99, e.route_p999);
  }
  // The run-level histogram holds exactly one sample per query and its
  // extremes bracket the per-epoch medians.
  EXPECT_EQ(result.route_latency.count(), result.total_queries);
  EXPECT_LE(result.route_latency.min(), result.epochs.front().route_p50);
  EXPECT_GE(result.route_latency.max(), result.epochs.back().route_p50);
}

TEST(RouteServer, DeterministicAcrossThreadCounts) {
  const Instance instance = uniform_parallel_links(8, 0.5, 1.0);
  const Policy policy = make_replicator_policy(instance);
  const WorkloadPtr workload = make_workload("poisson:20000");

  RouteServerOptions options = small_options();
  options.num_clients = 2000;
  options.epochs = 20;

  std::vector<EpochSummary> reference;
  std::vector<double> reference_flow;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    options.threads = threads;
    RouteServer server(instance, policy, *workload);
    const RouteServerResult result =
        server.run(FlowVector::uniform(instance), options);
    if (threads == 1) {
      reference = result.epochs;
      reference_flow.assign(result.final_flow.values().begin(),
                            result.final_flow.values().end());
      continue;
    }
    // Bit-identical dynamics: digest, counters and the final flow.
    EXPECT_EQ(telemetry_digest(result.epochs),
              telemetry_digest(reference));
    ASSERT_EQ(result.epochs.size(), reference.size());
    for (std::size_t e = 0; e < reference.size(); ++e) {
      EXPECT_EQ(result.epochs[e].queries, reference[e].queries);
      EXPECT_EQ(result.epochs[e].migrations, reference[e].migrations);
      EXPECT_EQ(result.epochs[e].wardrop_gap, reference[e].wardrop_gap);
      // The histogram-backed route quantiles are part of the contract:
      // bit-equal, not approximately equal.
      EXPECT_EQ(result.epochs[e].route_p50, reference[e].route_p50);
      EXPECT_EQ(result.epochs[e].route_p99, reference[e].route_p99);
      EXPECT_EQ(result.epochs[e].route_p999, reference[e].route_p999);
    }
    for (std::size_t p = 0; p < reference_flow.size(); ++p) {
      EXPECT_EQ(result.final_flow.values()[p], reference_flow[p]);
    }
  }
}

TEST(RouteServer, ReplayCsvIsByteIdenticalForOneAndFourThreads) {
  const Instance instance = braess(true);
  const Policy policy = make_replicator_policy(instance);
  const WorkloadPtr workload = make_workload("bursty:30000,5000,3,2");

  RouteServerOptions options = small_options();
  options.epochs = 25;

  const std::string path1 = "service_replay_t1.csv";
  const std::string path4 = "service_replay_t4.csv";
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    options.threads = threads;
    RouteServer server(instance, policy, *workload);
    const RouteServerResult result =
        server.run(FlowVector::uniform(instance), options);
    write_epoch_csv(threads == 1 ? path1 : path4, result.epochs,
                    /*include_timing=*/false);
  }
  const std::string csv1 = slurp(path1);
  const std::string csv4 = slurp(path4);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  std::remove(path1.c_str());
  std::remove(path4.c_str());
}

TEST(RouteServer, LatencyRecordingPopulatesWallClockFields) {
  const Instance instance = braess(true);
  const Policy policy = make_replicator_policy(instance);
  const WorkloadPtr workload = closed_loop_workload(2000);
  RouteServer server(instance, policy, *workload);

  RouteServerOptions options = small_options();
  options.epochs = 5;
  options.record_latency = true;
  options.latency_sample_every = 8;
  const RouteServerResult result =
      server.run(FlowVector::uniform(instance), options);

  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.queries_per_second, 0.0);
  EXPECT_GE(result.p99_us, result.p50_us);
  EXPECT_GE(result.p999_us, result.p99_us);
  EXPECT_GT(result.p50_us, 0.0);
  // Quantiles come from the merged wall-clock histogram: one sample per
  // timed query (every latency_sample_every-th of each shard).
  EXPECT_FALSE(result.wall_latency_us.empty());
  EXPECT_LE(result.wall_latency_us.count(), result.total_queries);
  EXPECT_DOUBLE_EQ(result.p50_us, result.wall_latency_us.quantile(0.5));
}

TEST(RouteServer, ReplayModeLeavesWallClockFieldsZeroed) {
  const Instance instance = braess(true);
  const Policy policy = make_replicator_policy(instance);
  const WorkloadPtr workload = closed_loop_workload(500);
  RouteServer server(instance, policy, *workload);

  RouteServerOptions options = small_options();  // record_latency = false
  options.epochs = 3;
  const RouteServerResult result =
      server.run(FlowVector::uniform(instance), options);
  EXPECT_TRUE(result.wall_latency_us.empty());
  EXPECT_EQ(result.p50_us, 0.0);
  EXPECT_EQ(result.p999_us, 0.0);
  // ...while the deterministic route histogram is still fully populated.
  EXPECT_EQ(result.route_latency.count(), result.total_queries);
  for (const EpochSummary& e : result.epochs) {
    EXPECT_EQ(e.p50_us, 0.0);
    EXPECT_GT(e.route_p50, 0.0);
  }
}

// ------------------------------------------------------ --tenants grammar

TEST(TenantSpecs, ParsesNamesFieldsAndInheritance) {
  const std::vector<TenantSpec> specs = parse_tenant_specs(
      "plain;"
      "big:clients=5000,shards=16,epochs=40,seed=9,weight=3,period=0.05;"
      "custom:scenario=braess,policy=alpha:0.5,workload=closed-loop:200");
  ASSERT_EQ(specs.size(), 3u);

  EXPECT_EQ(specs[0].name, "plain");  // all fields inherit
  EXPECT_TRUE(specs[0].scenario.empty());
  EXPECT_FALSE(specs[0].clients.has_value());
  EXPECT_FALSE(specs[0].seed.has_value());
  EXPECT_FALSE(specs[0].sub_batch_auto);

  EXPECT_EQ(specs[1].name, "big");
  EXPECT_EQ(specs[1].clients, 5000u);
  EXPECT_EQ(specs[1].shards, 16u);
  EXPECT_EQ(specs[1].epochs, 40u);
  EXPECT_EQ(specs[1].seed, 9u);
  EXPECT_EQ(specs[1].weight, 3u);
  EXPECT_EQ(specs[1].period, 0.05);

  EXPECT_EQ(specs[2].scenario, "braess");
  EXPECT_EQ(specs[2].policy, "alpha:0.5");
  EXPECT_EQ(specs[2].workload, "closed-loop:200");
}

TEST(TenantSpecs, CommaValuesContinueThePreviousField) {
  // A workload spec's own commas must survive the field split.
  const std::vector<TenantSpec> specs = parse_tenant_specs(
      "bursty:workload=bursty:40000,2000,3,2,shards=8;"
      "diurnal:workload=diurnal:1000,0.5,24");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].workload, "bursty:40000,2000,3,2");
  EXPECT_EQ(specs[0].shards, 8u);
  EXPECT_EQ(specs[1].workload, "diurnal:1000,0.5,24");
}

TEST(TenantSpecs, SubBatchTakesCountOrAuto) {
  const std::vector<TenantSpec> specs =
      parse_tenant_specs("fixed:sub-batch=512;adaptive:sub-batch=auto");
  EXPECT_EQ(specs[0].sub_batch, 512u);
  EXPECT_FALSE(specs[0].sub_batch_auto);
  EXPECT_FALSE(specs[1].sub_batch.has_value());
  EXPECT_TRUE(specs[1].sub_batch_auto);
}

TEST(TenantSpecs, RejectsMalformedSpecs) {
  // Zero tenants.
  EXPECT_THROW(parse_tenant_specs(""), std::invalid_argument);
  EXPECT_THROW(parse_tenant_specs(";;"), std::invalid_argument);
  // Bad names.
  EXPECT_THROW(parse_tenant_specs(":clients=5"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_specs("has space:clients=5"),
               std::invalid_argument);
  // Duplicate names.
  EXPECT_THROW(parse_tenant_specs("a;b;a"), std::invalid_argument);
  // Unknown key, missing '=', empty value, bad numbers.
  EXPECT_THROW(parse_tenant_specs("a:bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_specs("a:justvalue"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_specs("a:clients="), std::invalid_argument);
  EXPECT_THROW(parse_tenant_specs("a:clients=-5"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_specs("a:clients=many"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_specs("a:period=fast"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_specs("a:sub-batch=never"),
               std::invalid_argument);
  // The error message lists the key catalogue (the CLI surfaces it).
  try {
    parse_tenant_specs("a:bogus=1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("scenario"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sub-batch"), std::string::npos);
  }
}

// ------------------------------------------- BulletinBoard boundary cases

TEST(BulletinBoard, EmptyBeforeFirstPost) {
  const Instance instance = braess(true);
  const BulletinBoard board(instance);
  EXPECT_FALSE(board.has_data());
  EXPECT_DOUBLE_EQ(board.posted_at(), 0.0);
  // Buffers exist (zeroed) so accidental reads are defined, not UB.
  ASSERT_EQ(board.path_latency().size(), instance.path_count());
  for (const double l : board.path_latency()) EXPECT_DOUBLE_EQ(l, 0.0);
}

TEST(BulletinBoard, RepostAtIdenticalTimestampRefreshesData) {
  const Instance instance = uniform_parallel_links(2, 0.5, 1.0);
  BulletinBoard board(instance);
  const std::vector<double> even = {0.5, 0.5};
  const std::vector<double> skewed = {1.0, 0.0};
  board.post(1.0, even);
  const double latency_even = board.path_latency()[0];
  board.post(1.0, skewed);  // same timestamp, new flow
  EXPECT_TRUE(board.has_data());
  EXPECT_DOUBLE_EQ(board.posted_at(), 1.0);
  EXPECT_GT(board.path_latency()[0], latency_even);
  EXPECT_DOUBLE_EQ(board.path_flow()[0], 1.0);
}

TEST(BulletinBoard, PostRejectsWrongPathCount) {
  const Instance instance = braess(true);
  BulletinBoard board(instance);
  const std::vector<double> wrong(instance.path_count() + 1, 0.0);
  EXPECT_THROW(board.post(0.0, wrong), std::invalid_argument);
}

TEST(SimulatorBoundary, NonPositiveUpdatePeriodsAreRejected) {
  const Instance instance = braess(true);
  const Policy policy = make_replicator_policy(instance);
  const FlowVector initial = FlowVector::uniform(instance);

  {
    AgentSimOptions options;
    options.update_period = 0.0;
    const AgentSimulator simulator(instance, policy);
    EXPECT_THROW(simulator.run(initial, options), std::invalid_argument);
  }
  {
    // Fluid: 0 selects fresh mode by contract, but negative is an error.
    SimulationOptions options;
    options.update_period = -0.5;
    const FluidSimulator simulator(instance, policy);
    EXPECT_THROW(simulator.run(initial, options), std::invalid_argument);
  }
}

}  // namespace
}  // namespace staleflow
