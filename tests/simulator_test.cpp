// Tests for the simulators: the paper's headline behaviours.
//   * Theorem 2  — convergence under fresh information.
//   * Section 3.2 — best response oscillates under staleness, with the
//                   exact closed-form orbit and amplitude.
//   * Corollary 5 — smooth policies converge when T <= 1/(4 D alpha beta).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/accounting.h"
#include "analysis/oscillation.h"
#include "analysis/trajectory.h"
#include "core/best_response.h"
#include "core/fluid_simulator.h"
#include "equilibrium/frank_wolfe.h"
#include "equilibrium/metrics.h"
#include "latency/functions.h"
#include "net/generators.h"
#include "util/rng.h"

namespace staleflow {
namespace {

Instance pigou() {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, constant(1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

// --------------------------------------------------- fresh info (Thm 2)

TEST(FluidSimulator, FreshInformationConvergesOnPigou) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = 0.0;  // fresh
  options.horizon = 200.0;
  const SimulationResult result =
      sim.run(FlowVector::uniform(inst), options);
  EXPECT_LT(result.final_gap, 1e-3);
  EXPECT_NEAR(result.final_flow[PathId{0}], 1.0, 0.05);
}

TEST(FluidSimulator, FreshPotentialIsMonotone) {
  const Instance inst = braess(true);
  const Policy policy = make_replicator_policy(inst, 0.05);
  const FluidSimulator sim(inst, policy);
  TrajectoryRecorder recorder(inst);
  SimulationOptions options;
  options.update_period = 0.0;
  options.horizon = 50.0;
  sim.run(FlowVector::uniform(inst), options, recorder.observer());
  EXPECT_LT(recorder.max_potential_increase(), 1e-9);
}

TEST(FluidSimulator, FreshConvergesForAllPolicyFamilies) {
  const Instance inst = pigou();
  std::vector<Policy> policies;
  policies.push_back(make_uniform_linear_policy(inst));
  policies.push_back(make_replicator_policy(inst, 0.02));
  policies.push_back(make_logit_policy(inst, 3.0));
  for (const Policy& policy : policies) {
    const FluidSimulator sim(inst, policy);
    SimulationOptions options;
    options.update_period = 0.0;
    options.horizon = 400.0;
    const SimulationResult result =
        sim.run(FlowVector::uniform(inst), options);
    EXPECT_LT(result.final_gap, 5e-3) << policy.name();
  }
}

// ------------------------------------------ best response oscillation

TEST(BestResponse, ClosedFormOrbitFromPaper) {
  // Section 3.2: with f1(0) = 1/(e^{-T}+1) the orbit returns to itself
  // every two phases and alternates across 1/2.
  const double beta = 4.0;
  const double T = 0.5;
  const Instance inst = two_link_pulse(beta);
  const BestResponseSimulator sim(inst);

  const double f1_start = 1.0 / (std::exp(-T) + 1.0);
  FlowVector start(inst, {f1_start, 1.0 - f1_start});

  std::vector<double> f1_at_phase_start;
  BestResponseOptions options;
  options.update_period = T;
  options.horizon = 10.0 * T;
  const PhaseObserver observer = [&](const PhaseInfo& info) {
    f1_at_phase_start.push_back(info.flow_before[0]);
  };
  sim.run(start, options, observer);

  ASSERT_GE(f1_at_phase_start.size(), 6u);
  for (std::size_t i = 0; i + 2 < f1_at_phase_start.size(); ++i) {
    EXPECT_NEAR(f1_at_phase_start[i], f1_at_phase_start[i + 2], 1e-12);
    // Alternation across 1/2.
    EXPECT_LT((f1_at_phase_start[i] - 0.5) * (f1_at_phase_start[i + 1] - 0.5),
              0.0);
  }
  // f1(T) = f1(0) * e^{-T}, exactly as in the paper.
  EXPECT_NEAR(f1_at_phase_start[1], f1_start * std::exp(-T), 1e-12);
}

TEST(BestResponse, OscillationAmplitudeMatchesFormula) {
  // X = beta * (1 - e^{-T}) / (2 e^{-T} + 2) at the start of each phase.
  const double beta = 8.0;
  for (const double T : {0.1, 0.25, 0.5, 1.0}) {
    const Instance inst = two_link_pulse(beta);
    const BestResponseSimulator sim(inst);
    const double f1_start = 1.0 / (std::exp(-T) + 1.0);
    FlowVector start(inst, {f1_start, 1.0 - f1_start});

    double max_deviation = 0.0;
    BestResponseOptions options;
    options.update_period = T;
    options.horizon = 8.0 * T;
    const PhaseObserver observer = [&](const PhaseInfo& info) {
      max_deviation = std::max(
          max_deviation,
          max_latency_deviation(inst, info.flow_before, -1.0));
    };
    sim.run(start, options, observer);

    const double predicted =
        beta * (1.0 - std::exp(-T)) / (2.0 * std::exp(-T) + 2.0);
    EXPECT_NEAR(max_deviation, predicted, 1e-10) << "T=" << T;
  }
}

TEST(BestResponse, NeverSettlesOnPulseInstance) {
  const Instance inst = two_link_pulse(4.0);
  const BestResponseSimulator sim(inst);
  const double T = 0.3;
  const double f1_start = 1.0 / (std::exp(-T) + 1.0);
  FlowVector start(inst, {f1_start, 1.0 - f1_start});

  TrajectoryRecorder::Options rec_options;
  rec_options.store_flows = true;
  TrajectoryRecorder recorder(inst, rec_options);
  BestResponseOptions options;
  options.update_period = T;
  options.horizon = 30.0;
  sim.run(start, options, recorder.observer());

  const OscillationReport report =
      analyse_oscillation(recorder.flows(), 20, 1e-9);
  EXPECT_FALSE(report.settled);
  EXPECT_TRUE(report.period_two);
}

TEST(BestResponse, ConvergesOnPigouDespiteStaleness) {
  // Pigou has a dominant link; best response lands on it and stays.
  const Instance inst = pigou();
  const BestResponseSimulator sim(inst);
  BestResponseOptions options;
  options.update_period = 0.2;
  options.horizon = 40.0;
  const SimulationResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_LT(result.final_gap, 1e-6);
}

TEST(BestResponse, TieSplitting) {
  const Instance inst = two_link_pulse(4.0);
  const std::vector<double> latency{0.5, 0.5};
  const FlowVector reply = best_reply_flow(inst, latency);
  EXPECT_DOUBLE_EQ(reply[PathId{0}], 0.5);
  EXPECT_DOUBLE_EQ(reply[PathId{1}], 0.5);
  const std::vector<double> uneven{0.5, 0.500001};
  const FlowVector strict = best_reply_flow(inst, uneven);
  EXPECT_DOUBLE_EQ(strict[PathId{0}], 1.0);
  const FlowVector tolerant = best_reply_flow(inst, uneven, 1e-3);
  EXPECT_DOUBLE_EQ(tolerant[PathId{0}], 0.5);
}

// -------------------------------------------- stale smooth (Cor 5)

TEST(FluidSimulator, SmoothPolicyConvergesAtSafePeriod) {
  const Instance inst = two_link_pulse(4.0);
  const Policy policy = make_uniform_linear_policy(inst);
  const double T_safe = inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);

  SimulationOptions options;
  options.update_period = T_safe;
  options.horizon = 400.0;
  options.stop_gap = 1e-9;
  const SimulationResult result =
      sim.run(FlowVector(inst, {0.9, 0.1}), options);
  EXPECT_LT(result.final_gap, 1e-4);
}

TEST(FluidSimulator, PotentialDecreasesEveryPhaseAtSafePeriod) {
  // Lemma 4: Delta Phi <= V/2 <= 0 in every phase when T is safe.
  const Instance inst = two_link_pulse(4.0);
  const Policy policy = make_uniform_linear_policy(inst);
  const double T_safe = inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);

  AccountingRecorder recorder(inst);
  SimulationOptions options;
  options.update_period = T_safe;
  options.horizon = 60.0;
  sim.run(FlowVector(inst, {0.95, 0.05}), options, recorder.observer());

  EXPECT_EQ(recorder.lemma4_violations(), 0u);
  EXPECT_LT(recorder.max_delta_phi(), 1e-12);
  EXPECT_LT(recorder.max_identity_residual(), 1e-12);
}

TEST(FluidSimulator, ReplicatorConvergesUnderStaleness) {
  const Instance inst = two_link_pulse(4.0);
  const Policy policy = make_replicator_policy(inst, 0.01);
  const double T_safe = inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);

  SimulationOptions options;
  options.update_period = T_safe;
  options.horizon = 600.0;
  options.stop_gap = 1e-7;
  const SimulationResult result =
      sim.run(FlowVector(inst, {0.85, 0.15}), options);
  EXPECT_LT(result.final_gap, 1e-4);
}

TEST(FluidSimulator, ExactAndRk4PhaseSolutionsAgree) {
  const Instance inst = braess(true);
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);

  SimulationOptions rk4_options;
  rk4_options.update_period = 0.1;
  rk4_options.horizon = 5.0;
  rk4_options.method = IntegrationMethod::kRk4;
  rk4_options.step_size = 1e-3;
  const SimulationResult via_rk4 =
      sim.run(FlowVector::uniform(inst), rk4_options);

  SimulationOptions exact_options = rk4_options;
  exact_options.method = IntegrationMethod::kExact;
  const SimulationResult via_exact =
      sim.run(FlowVector::uniform(inst), exact_options);

  for (std::size_t p = 0; p < inst.path_count(); ++p) {
    EXPECT_NEAR(via_rk4.final_flow[PathId{p}],
                via_exact.final_flow[PathId{p}], 1e-8);
  }
}

TEST(FluidSimulator, AdaptiveMethodAgreesWithExact) {
  const Instance inst = two_link_pulse(4.0);
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);

  SimulationOptions exact;
  exact.update_period = 0.2;
  exact.horizon = 3.0;
  exact.method = IntegrationMethod::kExact;
  const SimulationResult a = sim.run(FlowVector(inst, {0.8, 0.2}), exact);

  SimulationOptions adaptive = exact;
  adaptive.method = IntegrationMethod::kAdaptive;
  const SimulationResult b = sim.run(FlowVector(inst, {0.8, 0.2}), adaptive);

  EXPECT_NEAR(a.final_flow[PathId{0}], b.final_flow[PathId{0}], 1e-7);
}

TEST(FluidSimulator, StopGapTerminatesEarly) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = 0.1;
  options.horizon = 1'000.0;
  options.stop_gap = 1e-3;
  const SimulationResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_TRUE(result.stopped_by_gap);
  EXPECT_LT(result.final_time, 1'000.0);
  EXPECT_LE(result.final_gap, 1e-3);
}

TEST(FluidSimulator, MaxPhasesCapsWork) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = 0.1;
  options.horizon = 1'000.0;
  options.max_phases = 7;
  const SimulationResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_EQ(result.phases, 7u);
}

TEST(FluidSimulator, LongRunStaysFeasible) {
  const Instance inst = braess(true);
  const Policy policy = make_replicator_policy(inst, 0.05);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = 0.05;
  options.horizon = 100.0;
  const SimulationResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_TRUE(is_feasible(inst, result.final_flow.values(), 1e-9));
}

TEST(FluidSimulator, RejectsBadInput) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  EXPECT_THROW(sim.run(FlowVector(inst, {0.7, 0.7}), options),
               std::invalid_argument);
  options.horizon = -1.0;
  EXPECT_THROW(sim.run(FlowVector::uniform(inst), options),
               std::invalid_argument);
  SimulationOptions fresh_exact;
  fresh_exact.update_period = 0.0;
  fresh_exact.method = IntegrationMethod::kExact;
  EXPECT_THROW(sim.run(FlowVector::uniform(inst), fresh_exact),
               std::invalid_argument);
}

TEST(BestResponseSimulator, RejectsBadInput) {
  const Instance inst = pigou();
  const BestResponseSimulator sim(inst);
  BestResponseOptions options;
  options.update_period = 0.0;
  EXPECT_THROW(sim.run(FlowVector::uniform(inst), options),
               std::invalid_argument);
}

// Corollary 5 sweep: with uniform+alpha-capped migration, vary T relative
// to T_safe = 1/(4 D alpha beta) and check the safe side always converges.
class SafePeriodSweep : public ::testing::TestWithParam<double> {};

TEST_P(SafePeriodSweep, ConvergesWheneverTIsAtMostSafe) {
  const double fraction = GetParam();
  const Instance inst = two_link_pulse(8.0);
  const double alpha = 0.5;
  const Policy policy = make_alpha_policy(alpha);
  const double T = fraction * inst.safe_update_period(alpha);
  const FluidSimulator sim(inst, policy);

  SimulationOptions options;
  options.update_period = T;
  options.horizon = 300.0;
  options.stop_gap = 1e-8;
  const SimulationResult result =
      sim.run(FlowVector(inst, {0.9, 0.1}), options);
  EXPECT_LT(result.final_gap, 1e-4) << "T/T_safe = " << fraction;
}

INSTANTIATE_TEST_SUITE_P(Fractions, SafePeriodSweep,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace staleflow
