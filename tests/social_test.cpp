// Tests for the social-optimum / price-of-anarchy module.
#include <gtest/gtest.h>

#include <cmath>

#include "equilibrium/social.h"
#include "latency/functions.h"
#include "net/generators.h"
#include "util/rng.h"

namespace staleflow {
namespace {

Instance pigou() {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, constant(1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

TEST(MarginalCostLatency, AffineClosedForm) {
  // l = a + b x  =>  c = a + 2 b x,  INT c = a x + b x^2 = x l(x).
  const AffineLatency base(1.0, 3.0);
  const MarginalCostLatency mc(base);
  EXPECT_DOUBLE_EQ(mc.value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(mc.value(0.5), 1.0 + 3.0);  // 1 + 2*3*0.5
  EXPECT_DOUBLE_EQ(mc.integral(0.5), 0.5 * base.value(0.5));
  EXPECT_NEAR(mc.derivative(0.3), 6.0, 1e-5);
  EXPECT_GE(mc.max_slope(1.0), 6.0 - 1e-6);
}

TEST(MarginalCostLatency, MonomialClosedForm) {
  // l = x^d => c = (d+1) x^d.
  const MonomialLatency base(1.0, 3.0);
  const MarginalCostLatency mc(base);
  for (double x : {0.2, 0.5, 0.9}) {
    EXPECT_NEAR(mc.value(x), 4.0 * std::pow(x, 3.0), 1e-12);
    EXPECT_NEAR(mc.integral(x), std::pow(x, 4.0), 1e-12);
  }
}

TEST(MarginalCostLatency, SatisfiesLatencyContract) {
  const AffineLatency affine_base(0.5, 2.0);
  EXPECT_EQ(check_latency_contract(MarginalCostLatency(affine_base)), "");
  const MonomialLatency monomial_base(2.0, 2.0);
  EXPECT_EQ(check_latency_contract(MarginalCostLatency(monomial_base)), "");
}

TEST(MarginalCostLatency, CloneBehaves) {
  const AffineLatency base(1.0, 2.0);
  const MarginalCostLatency mc(base);
  const LatencyPtr copy = mc.clone();
  EXPECT_DOUBLE_EQ(copy->value(0.4), mc.value(0.4));
  EXPECT_NE(copy->describe().find("marginal"), std::string::npos);
}

TEST(SocialCost, MatchesHandComputation) {
  const Instance inst = pigou();
  // f = (0.5, 0.5): C = 0.5*0.5 + 0.5*1 = 0.75.
  EXPECT_DOUBLE_EQ(social_cost(inst, std::vector<double>{0.5, 0.5}), 0.75);
  EXPECT_DOUBLE_EQ(social_cost(inst, std::vector<double>{1.0, 0.0}), 1.0);
}

TEST(MarginalCostInstance, PreservesStructure) {
  const Instance inst = braess(true);
  const Instance twin = marginal_cost_instance(inst);
  EXPECT_EQ(twin.path_count(), inst.path_count());
  EXPECT_EQ(twin.commodity_count(), inst.commodity_count());
  EXPECT_EQ(twin.edge_count(), inst.edge_count());
  // Path p in the twin uses the same edges as path p in the original.
  for (std::size_t p = 0; p < inst.path_count(); ++p) {
    EXPECT_TRUE(twin.path(PathId{p}) == inst.path(PathId{p}));
  }
}

TEST(SocialOptimum, PigouSplitsTraffic) {
  // min f1*f1 + f2: optimum at f1 = 1/2, cost 1/4 + 1/2 = 3/4.
  const Instance inst = pigou();
  const SocialOptimumResult opt = solve_social_optimum(inst);
  EXPECT_TRUE(opt.converged);
  EXPECT_NEAR(opt.flow[PathId{0}], 0.5, 1e-4);
  EXPECT_NEAR(opt.social_cost, 0.75, 1e-6);
}

TEST(PriceOfAnarchy, PigouIsFourThirds) {
  const Instance inst = pigou();
  const PriceOfAnarchyResult poa = price_of_anarchy(inst);
  EXPECT_NEAR(poa.equilibrium_cost, 1.0, 1e-6);
  EXPECT_NEAR(poa.optimum_cost, 0.75, 1e-6);
  EXPECT_NEAR(poa.ratio, 4.0 / 3.0, 1e-5);
}

TEST(PriceOfAnarchy, BraessIsFourThirds) {
  // Equilibrium cost 2 (everyone zig-zags), optimum 1.5.
  const Instance inst = braess(true);
  const PriceOfAnarchyResult poa = price_of_anarchy(inst);
  EXPECT_NEAR(poa.ratio, 4.0 / 3.0, 1e-4);
}

TEST(PriceOfAnarchy, OneWithoutShortcut) {
  // Without the shortcut, the equilibrium happens to be optimal.
  const Instance inst = braess(false);
  const PriceOfAnarchyResult poa = price_of_anarchy(inst);
  EXPECT_NEAR(poa.ratio, 1.0, 1e-6);
}

TEST(PriceOfAnarchy, ZeroCostOptimumHandled) {
  // The pulse instance has equilibrium latency 0 => both costs 0, PoA 1.
  const Instance inst = two_link_pulse(4.0);
  const PriceOfAnarchyResult poa = price_of_anarchy(inst);
  EXPECT_DOUBLE_EQ(poa.ratio, 1.0);
}

// Property sweep: Roughgarden-Tardos — with affine latencies the price of
// anarchy never exceeds 4/3.
class AffinePoaSweep : public ::testing::TestWithParam<int> {};

TEST_P(AffinePoaSweep, AffinePoaAtMostFourThirds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto links = static_cast<std::size_t>(2 + GetParam() % 5);
  const Instance inst = random_parallel_links(links, rng, 1.0, 0.1, 2.0);
  const PriceOfAnarchyResult poa = price_of_anarchy(inst);
  EXPECT_GE(poa.ratio, 1.0 - 1e-9);
  EXPECT_LE(poa.ratio, 4.0 / 3.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffinePoaSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace staleflow
