// Tests for the sweep subsystem: thread pool, scenario registry, grid
// expansion (including the service simulator's workload x shard axes),
// aggregation, and the 1-thread vs 4-thread determinism contract with a
// pinned golden digest for a service sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "cli_common.h"
#include "equilibrium/potential.h"
#include "net/flow.h"
#include "net/generators.h"
#include "sweep/sweep.h"
#include "util/thread_pool.h"

namespace staleflow {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, RethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed; the pool keeps working.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForCoversIndexRange) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<int> hits(257, 0);
    parallel_for(hits.size(), threads,
                 [&hits](std::size_t i) { hits[i] += 1; });
    for (const int hit : hits) EXPECT_EQ(hit, 1);
  }
}

// ---------------------------------------------------------- ScenarioRegistry

TEST(ScenarioRegistry, BuiltinHasKnownScenarios) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  EXPECT_GE(registry.size(), 10u);
  EXPECT_TRUE(registry.contains("two-link-pulse"));
  EXPECT_TRUE(registry.contains("braess"));
  EXPECT_TRUE(registry.contains("grid-3x3"));
  EXPECT_FALSE(registry.contains("no-such-scenario"));
  EXPECT_THROW(registry.at("no-such-scenario"), std::out_of_range);
}

TEST(ScenarioRegistry, FactoriesAreDeterministicGivenSeed) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  for (const std::string& name : registry.names()) {
    Rng a(123), b(123);
    const Instance first = registry.at(name).make(a);
    const Instance second = registry.at(name).make(b);
    EXPECT_EQ(first.path_count(), second.path_count()) << name;
    // Same structure and same latency landscape: evaluate at uniform flow.
    const FlowVector flow = FlowVector::uniform(first);
    EXPECT_DOUBLE_EQ(potential(first, flow.values()),
                     potential(second, flow.values()))
        << name;
  }
}

TEST(ScenarioRegistry, RejectsDuplicatesAndBadEntries) {
  ScenarioRegistry registry;
  registry.add({"x", "", [](Rng&) { return braess(); }});
  EXPECT_THROW(registry.add({"x", "", [](Rng&) { return braess(); }}),
               std::invalid_argument);
  EXPECT_THROW(registry.add({"", "", [](Rng&) { return braess(); }}),
               std::invalid_argument);
  EXPECT_THROW(registry.add({"y", "", nullptr}), std::invalid_argument);
}

// ------------------------------------------------------------- named_policy

TEST(NamedPolicy, ParsesTheFullGrammar) {
  const Instance instance = braess();
  for (const char* name : {"replicator", "uniform-linear", "alpha:0.5",
                           "logit:10", "naive", "relative-slack",
                           "relative-slack:0.25", "safe"}) {
    const PolicySpec spec = named_policy(name);
    EXPECT_EQ(spec.name, name);
    const Policy policy = spec.make(instance, 0.1);
    EXPECT_FALSE(policy.name().empty());
  }
}

TEST(NamedPolicy, RejectsUnknownAndMalformed) {
  EXPECT_THROW(named_policy("no-such-policy"), std::invalid_argument);
  EXPECT_THROW(named_policy("alpha"), std::invalid_argument);
  EXPECT_THROW(named_policy("alpha:zero"), std::invalid_argument);
  EXPECT_THROW(named_policy("alpha:-1"), std::invalid_argument);
  EXPECT_THROW(named_policy("logit"), std::invalid_argument);
}

// ------------------------------------------------------------------- expand

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.scenarios = {"braess", "uniform-links-8"};
  spec.policies = {named_policy("replicator"), named_policy("alpha:0.5")};
  spec.update_periods = {0.05, 0.1};
  spec.replicas = 2;
  spec.horizon = 10.0;
  return spec;
}

TEST(Expand, CartesianProductInCanonicalOrder) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  const ExperimentSpec spec = small_spec();
  const std::vector<CellSpec> cells = expand(spec, registry);

  ASSERT_EQ(cells.size(), cell_count(spec));
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * 2u);

  // Indices are positions; order is scenario-major, then policy, period,
  // replica.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
  EXPECT_EQ(cells[0].scenario, "braess");
  EXPECT_EQ(cells[0].policy, "replicator");
  EXPECT_DOUBLE_EQ(cells[0].update_period, 0.05);
  EXPECT_EQ(cells[0].replica, 0u);
  EXPECT_EQ(cells[1].replica, 1u);
  EXPECT_DOUBLE_EQ(cells[2].update_period, 0.1);
  EXPECT_EQ(cells[4].policy, "alpha:0.5");
  EXPECT_EQ(cells[8].scenario, "uniform-links-8");

  // Every combination appears exactly once.
  std::set<std::string> combos;
  for (const CellSpec& cell : cells) {
    std::ostringstream key;
    key << cell.scenario << '|' << cell.policy << '|' << cell.update_period
        << '|' << cell.replica;
    EXPECT_TRUE(combos.insert(key.str()).second);
  }
}

TEST(Expand, ValidatesTheSpec) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();

  ExperimentSpec spec = small_spec();
  spec.scenarios.clear();
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = small_spec();
  spec.scenarios.push_back("no-such-scenario");
  EXPECT_THROW(expand(spec, registry), std::out_of_range);

  spec = small_spec();
  spec.scenarios.push_back("braess");  // duplicate
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = small_spec();
  spec.policies.clear();
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = small_spec();
  spec.policies.push_back(named_policy("replicator"));  // duplicate
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = small_spec();
  spec.update_periods = {0.1, 0.0};
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = small_spec();
  spec.replicas = 0;
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = small_spec();
  spec.horizon = 0.0;
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);
}

// ------------------------------------------------------- service expansion

ExperimentSpec service_spec() {
  ExperimentSpec spec;
  spec.simulator = SimulatorKind::kService;
  spec.scenarios = {"braess"};
  spec.policies = {named_policy("replicator")};
  spec.update_periods = {0.1};
  spec.workloads = {"closed-loop:2000", "poisson:20000"};
  spec.shard_counts = {1, 4};
  spec.num_clients = 2000;
  spec.replicas = 2;
  spec.horizon = 2.0;  // 20 epochs per cell
  return spec;
}

TEST(ParseSimulatorKind, RoundTripsAllKindsAndRejectsUnknown) {
  for (const auto kind :
       {SimulatorKind::kFluid, SimulatorKind::kRound, SimulatorKind::kAgent,
        SimulatorKind::kService}) {
    EXPECT_EQ(parse_simulator_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_simulator_kind("svc"), std::invalid_argument);
  EXPECT_THROW(parse_simulator_kind(""), std::invalid_argument);
  EXPECT_THROW(parse_simulator_kind("SERVICE"), std::invalid_argument);
  // The error carries the catalogue, so the CLI's usage text is useful.
  try {
    parse_simulator_kind("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("service"), std::string::npos);
  }
}

TEST(Expand, ServiceAxesMultiplyTheGridInCanonicalOrder) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  const ExperimentSpec spec = service_spec();
  const std::vector<CellSpec> cells = expand(spec, registry);

  // 1 scenario x 1 policy x 1 period x 2 workloads x 2 shard counts x 2
  // replicas.
  ASSERT_EQ(cells.size(), cell_count(spec));
  ASSERT_EQ(cells.size(), 8u);
  // Order: workload-major over shard counts, then replicas.
  EXPECT_EQ(cells[0].workload, "closed-loop:2000");
  EXPECT_EQ(cells[0].shards, 1u);
  EXPECT_EQ(cells[0].replica, 0u);
  EXPECT_EQ(cells[1].replica, 1u);
  EXPECT_EQ(cells[2].shards, 4u);
  EXPECT_EQ(cells[4].workload, "poisson:20000");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
}

TEST(Expand, NonServiceCellsCarryNoServiceAxes) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  const std::vector<CellSpec> cells = expand(small_spec(), registry);
  for (const CellSpec& cell : cells) {
    EXPECT_TRUE(cell.workload.empty());
    EXPECT_EQ(cell.shards, 0u);
    EXPECT_EQ(cell.tenants, 0u);
  }
}

TEST(Expand, TenantAxisMultipliesAndDefaultsToOne) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();

  // Omitted axis: every service cell is a plain single-tenant cell.
  ExperimentSpec spec = service_spec();
  for (const CellSpec& cell : expand(spec, registry)) {
    EXPECT_EQ(cell.tenants, 1u);
  }

  // Explicit axis: innermost but for replicas, canonical order.
  spec.workloads = {"closed-loop:2000"};
  spec.shard_counts = {4};
  spec.tenant_counts = {1, 3};
  const std::vector<CellSpec> cells = expand(spec, registry);
  ASSERT_EQ(cells.size(), cell_count(spec));
  ASSERT_EQ(cells.size(), 4u);  // 2 tenant counts x 2 replicas
  EXPECT_EQ(cells[0].tenants, 1u);
  EXPECT_EQ(cells[0].replica, 0u);
  EXPECT_EQ(cells[1].tenants, 1u);
  EXPECT_EQ(cells[1].replica, 1u);
  EXPECT_EQ(cells[2].tenants, 3u);
  EXPECT_EQ(cells[3].tenants, 3u);
}

TEST(Expand, RejectsServiceAxesUnderOtherSimulators) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  // Workload, shard or tenant axes handed to fluid/round/agent are
  // mis-addressed configuration — rejected, never silently ignored.
  for (const auto kind : {SimulatorKind::kFluid, SimulatorKind::kRound,
                          SimulatorKind::kAgent}) {
    ExperimentSpec spec = small_spec();
    spec.simulator = kind;
    spec.workloads = {"poisson:100"};
    EXPECT_THROW(expand(spec, registry), std::invalid_argument);

    spec = small_spec();
    spec.simulator = kind;
    spec.shard_counts = {4};
    EXPECT_THROW(expand(spec, registry), std::invalid_argument);

    spec = small_spec();
    spec.simulator = kind;
    spec.tenant_counts = {2};
    EXPECT_THROW(expand(spec, registry), std::invalid_argument);
  }
}

TEST(Expand, ValidatesTheServiceSpec) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();

  ExperimentSpec spec = service_spec();
  spec.workloads.clear();
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = service_spec();
  spec.workloads = {"poison:500"};  // typo: unknown workload kind
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = service_spec();
  spec.workloads.push_back(spec.workloads.front());  // duplicate
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = service_spec();
  spec.shard_counts.clear();
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = service_spec();
  spec.shard_counts = {0, 4};  // zero-shard cell
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = service_spec();
  spec.shard_counts = {4, 4};  // duplicate
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = service_spec();
  spec.shard_counts = {spec.num_clients + 1};  // more shards than clients
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = service_spec();
  spec.tenant_counts = {0, 2};  // zero-tenant cell
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = service_spec();
  spec.tenant_counts = {2, 2};  // duplicate
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = service_spec();
  spec.sub_batch_queries = 0;  // invalid fixed threshold...
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);
  spec.sub_batch_auto = true;  // ...unless auto mode ignores it
  EXPECT_NO_THROW(expand(spec, registry));
}

// ------------------------------------------------------------------- runner

TEST(SweepRunner, RunsEveryCellAndConvergesOnEasyInstances) {
  ExperimentSpec spec = small_spec();
  spec.horizon = 50.0;
  const SweepRunner runner;
  const SweepResult result = runner.run(spec, 1);

  ASSERT_EQ(result.cells.size(), cell_count(spec));
  for (const CellResult& cell : result.cells) {
    EXPECT_TRUE(cell.ok) << cell.error;
    EXPECT_GT(cell.phases, 0u);
    EXPECT_GT(cell.paths, 0u);
    EXPECT_GE(cell.final_gap, 0.0);
    // Smooth policies on these benign instances must make clear progress
    // toward equilibrium within the horizon (the gentle alpha:0.5 policy
    // is the slowest of the grid; uniform initial gaps are O(0.1..1)).
    EXPECT_LT(cell.final_gap, 0.05)
        << cell.cell.scenario << " / " << cell.cell.policy;
  }
}

TEST(SweepRunner, CellErrorsAreRecordedNotThrown) {
  ScenarioRegistry registry;
  registry.add({"ok", "", [](Rng&) { return braess(); }});
  registry.add({"broken", "", [](Rng&) -> Instance {
                  throw std::runtime_error("generator exploded");
                }});

  ExperimentSpec spec;
  spec.scenarios = {"ok", "broken"};
  spec.policies = {named_policy("replicator")};
  spec.update_periods = {0.1};
  spec.horizon = 5.0;

  const SweepRunner runner(std::move(registry));
  const SweepResult result = runner.run(spec, 2);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_TRUE(result.cells[0].ok);
  EXPECT_FALSE(result.cells[1].ok);
  EXPECT_NE(result.cells[1].error.find("generator exploded"),
            std::string::npos);
}

TEST(SweepRunner, RoundAndAgentSimulatorsRun) {
  ExperimentSpec spec;
  spec.scenarios = {"braess"};
  spec.policies = {named_policy("uniform-linear")};
  spec.update_periods = {0.1};
  spec.horizon = 5.0;

  const SweepRunner runner;
  spec.simulator = SimulatorKind::kRound;
  SweepResult rounds = runner.run(spec, 1);
  ASSERT_EQ(rounds.cells.size(), 1u);
  EXPECT_TRUE(rounds.cells[0].ok) << rounds.cells[0].error;
  EXPECT_GT(rounds.cells[0].phases, 0u);

  spec.simulator = SimulatorKind::kAgent;
  spec.num_agents = 500;
  SweepResult agents = runner.run(spec, 1);
  ASSERT_EQ(agents.cells.size(), 1u);
  EXPECT_TRUE(agents.cells[0].ok) << agents.cells[0].error;
  EXPECT_GT(agents.cells[0].phases, 0u);
}

TEST(SweepRunner, ServiceCellsServeTheWorkloadAndFillServiceMetrics) {
  const ExperimentSpec spec = service_spec();
  const SweepRunner runner;
  const SweepResult result = runner.run(spec, 2);

  ASSERT_EQ(result.cells.size(), 8u);
  EXPECT_EQ(result.simulator, SimulatorKind::kService);
  for (const CellResult& cell : result.cells) {
    ASSERT_TRUE(cell.ok) << cell.error;
    // horizon 2.0 / T 0.1 = 20 epochs.
    EXPECT_EQ(cell.phases, 20u);
    EXPECT_DOUBLE_EQ(cell.final_time, 2.0);
    EXPECT_GT(cell.queries, 0u);
    EXPECT_LE(cell.migrations, cell.queries);
    EXPECT_GE(cell.migration_rate, 0.0);
    EXPECT_LE(cell.migration_rate, 1.0);
    EXPECT_GE(cell.final_gap, 0.0);
    // Every query recorded one route latency: the histogram is the full
    // per-query distribution, not a sample.
    EXPECT_EQ(cell.latency.count(), cell.queries);
    EXPECT_GT(cell.latency.quantile(0.5), 0.0);
    EXPECT_LE(cell.latency.quantile(0.5), cell.latency.quantile(0.99));
    EXPECT_LE(cell.latency.quantile(0.99), cell.latency.quantile(0.999));
  }
  // The closed-loop cells serve exactly queries_per_epoch x epochs.
  EXPECT_EQ(result.cells[0].queries, 2000u * 20u);

  // Groups pool the per-cell histograms; the merged count is the total
  // over the group's cells.
  const std::vector<GroupSummary> groups = summarise(result);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].queries,
            groups[0].latency.count());
  std::size_t total_queries = 0;
  for (const CellResult& cell : result.cells) total_queries += cell.queries;
  EXPECT_EQ(groups[0].queries, total_queries);
  EXPECT_FALSE(groups[0].migration_rate.empty());
}

// --------------------------------------------------------------- determinism

/// The determinism contract: a sweep is bit-identical for 1 vs 4 threads.
TEST(SweepRunner, BitIdenticalAcrossThreadCounts) {
  ExperimentSpec spec = small_spec();
  // Random scenarios make this a real test: instance generation draws from
  // the per-cell stream, so any scheduling leak would shift results.
  spec.scenarios = {"braess", "random-links-8", "grid-3x3"};
  spec.horizon = 20.0;

  const SweepRunner runner;
  const SweepResult one = runner.run(spec, 1);
  const SweepResult four = runner.run(spec, 4);

  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    const CellResult& a = one.cells[i];
    const CellResult& b = four.cells[i];
    EXPECT_EQ(a.cell.scenario, b.cell.scenario);
    EXPECT_EQ(a.cell.policy, b.cell.policy);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.phases, b.phases);
    EXPECT_EQ(a.converged, b.converged);
    // Exact bit equality, not tolerance: the same instruction sequence
    // must have run regardless of scheduling.
    EXPECT_EQ(a.final_gap, b.final_gap) << i;
    EXPECT_EQ(a.final_potential, b.final_potential) << i;
    EXPECT_EQ(a.time_to_converge, b.time_to_converge) << i;
    EXPECT_EQ(a.oscillation_amplitude, b.oscillation_amplitude) << i;
  }
}

TEST(SweepRunner, CsvOutputIsByteIdenticalAcrossThreadCounts) {
  ExperimentSpec spec = small_spec();
  spec.scenarios = {"braess", "random-links-8"};
  spec.horizon = 10.0;

  const SweepRunner runner;
  const std::string path_one = "sweep_test_cells_1.csv";
  const std::string path_four = "sweep_test_cells_4.csv";
  write_cells_csv(path_one, runner.run(spec, 1));
  write_cells_csv(path_four, runner.run(spec, 4));

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string one = slurp(path_one);
  const std::string four = slurp(path_four);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
  std::remove(path_one.c_str());
  std::remove(path_four.c_str());
}

/// The same contract for the service simulator: a sweep of RouteServer
/// cells (the most state-heavy simulator) is bit-identical at 1 vs 4
/// worker threads, down to the merged latency histograms and the CSV
/// bytes.
TEST(SweepRunner, ServiceSweepIsByteIdenticalAcrossThreadCounts) {
  const ExperimentSpec spec = service_spec();
  const SweepRunner runner;
  const SweepResult one = runner.run(spec, 1);
  const SweepResult four = runner.run(spec, 4);

  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    const CellResult& a = one.cells[i];
    const CellResult& b = four.cells[i];
    EXPECT_TRUE(a.ok) << a.error;
    EXPECT_EQ(a.queries, b.queries) << i;
    EXPECT_EQ(a.migrations, b.migrations) << i;
    EXPECT_EQ(a.final_gap, b.final_gap) << i;
    EXPECT_EQ(a.final_potential, b.final_potential) << i;
    // Histogram equality is exact: same counts, same extremes, same sum.
    EXPECT_TRUE(a.latency == b.latency) << i;
  }
  EXPECT_EQ(cells_digest(one), cells_digest(four));

  const std::string path_one = "sweep_service_cells_1.csv";
  const std::string path_four = "sweep_service_cells_4.csv";
  write_cells_csv(path_one, one);
  write_cells_csv(path_four, four);
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string csv_one = slurp(path_one);
  EXPECT_FALSE(csv_one.empty());
  EXPECT_EQ(csv_one, slurp(path_four));
  std::remove(path_one.c_str());
  std::remove(path_four.c_str());
}

/// Golden digest for one fixed service sweep cell. The configuration is
/// libm-free end to end (closed-loop arrivals, braess' affine latencies),
/// so the digest is platform-stable; a change here means the service
/// dynamics, the histogram bucketing or the RNG stream layout moved —
/// all of which are breaking changes to the replay contract.
TEST(SweepRunner, ServiceCellGoldenDigest) {
  ExperimentSpec spec = service_spec();
  spec.workloads = {"closed-loop:2000"};
  spec.shard_counts = {4};
  spec.replicas = 1;
  const SweepRunner runner;
  const SweepResult result = runner.run(spec, 2);
  ASSERT_EQ(result.cells.size(), 1u);
  ASSERT_TRUE(result.cells[0].ok) << result.cells[0].error;
  // Re-pinned when the tenants axis joined the digest (PR 5); the cell's
  // dynamics themselves are unchanged since PR 3.
  EXPECT_EQ(cells_digest(result), 0x7A94820F008CC7B6ULL);
}

/// A tenants > 1 cell runs a TenantRegistry of co-scheduled replicas on
/// the sweep's shared executor; the aggregate is deterministic across
/// sweep thread counts and sums the per-tenant work.
TEST(SweepRunner, TenantCellsAggregateAndStayDeterministic) {
  ExperimentSpec spec = service_spec();
  spec.workloads = {"closed-loop:2000"};
  spec.shard_counts = {4};
  spec.tenant_counts = {1, 3};
  spec.replicas = 1;
  spec.horizon = 1.0;  // 10 epochs per tenant

  const SweepRunner runner;
  const SweepResult one = runner.run(spec, 1);
  const SweepResult four = runner.run(spec, 4);
  ASSERT_EQ(one.cells.size(), 2u);
  for (const CellResult& cell : one.cells) {
    ASSERT_TRUE(cell.ok) << cell.error;
  }

  // The closed loop serves exactly 2000 queries per tenant-epoch, so the
  // 3-tenant cell aggregates 3x the solo cell's work (30 epochs pooled).
  EXPECT_EQ(one.cells[0].queries, 10u * 2000u);
  EXPECT_EQ(one.cells[1].queries, 3u * 10u * 2000u);
  EXPECT_EQ(one.cells[0].phases, 10u);
  EXPECT_EQ(one.cells[1].phases, 30u);
  EXPECT_EQ(one.cells[1].latency.count(), one.cells[1].queries);
  EXPECT_GT(one.cells[1].final_gap, 0.0);  // worst tenant's gap

  EXPECT_EQ(cells_digest(one), cells_digest(four));
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    EXPECT_EQ(one.cells[i].queries, four.cells[i].queries) << i;
    EXPECT_EQ(one.cells[i].migrations, four.cells[i].migrations) << i;
    EXPECT_EQ(one.cells[i].final_gap, four.cells[i].final_gap) << i;
    EXPECT_TRUE(one.cells[i].latency == four.cells[i].latency) << i;
  }
}

TEST(WriteHistCsv, DumpsCumulativeBucketCountsPerServiceCell) {
  ExperimentSpec spec = service_spec();
  spec.workloads = {"closed-loop:2000"};
  spec.shard_counts = {4};
  spec.replicas = 1;
  spec.horizon = 1.0;  // 10 epochs -> 20000 queries
  const SweepRunner runner;
  const SweepResult result = runner.run(spec, 1);
  ASSERT_EQ(result.cells.size(), 1u);
  ASSERT_TRUE(result.cells[0].ok) << result.cells[0].error;

  const std::string path = "sweep_test_hist.csv";
  write_hist_csv(path, result);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "index,scenario,policy,update_period,replica,workload,shards,"
            "tenants,faults,bucket,lower,upper,count,cumulative");
  // Every row is an occupied bucket of cell 0; counts sum to the cell's
  // query total and the cumulative column is their running sum. Splitting
  // on ',' is safe here: a healthy cell's faults field is empty and the
  // clause separators are ';'/'+', never ','... except within one clause,
  // which this healthy fixture does not exercise.
  std::size_t rows = 0;
  long long sum = 0;
  long long last_cumulative = 0;
  while (std::getline(in, line)) {
    ++rows;
    std::vector<std::string> fields;
    std::istringstream split(line);
    std::string field;
    while (std::getline(split, field, ',')) fields.push_back(field);
    ASSERT_EQ(fields.size(), 14u);
    EXPECT_EQ(fields[0], "0");
    EXPECT_TRUE(fields[8].empty());  // healthy cell: empty faults column
    const long long count = std::stoll(fields[12]);
    EXPECT_GT(count, 0);  // occupied buckets only
    sum += count;
    last_cumulative = std::stoll(fields[13]);
    EXPECT_EQ(last_cumulative, sum);
    // The bucket bounds bracket a positive latency.
    EXPECT_GT(std::stod(fields[11]), std::stod(fields[10]));
  }
  EXPECT_GT(rows, 1u);
  EXPECT_EQ(static_cast<std::size_t>(last_cumulative),
            result.cells[0].queries);
  std::remove(path.c_str());
}

// ------------------------------------------------------- cli_common helpers

TEST(CliCommon, ParseFlagsPairsValuesAndBooleans) {
  const auto flags = cli::parse_flags(
      {"run", "--threads", "4", "--quiet", "--csv", "out.csv"}, 1,
      {"quiet"});
  EXPECT_EQ(flags.at("threads"), "4");
  EXPECT_EQ(flags.at("quiet"), "1");
  EXPECT_EQ(flags.at("csv"), "out.csv");
  EXPECT_THROW(cli::parse_flags({"stray"}, 0, {}), cli::UsageError);
  EXPECT_THROW(cli::parse_flags({"--threads"}, 0, {}), cli::UsageError);
}

TEST(CliCommon, SplitListHonoursDelimiter) {
  EXPECT_EQ(cli::split_list("a,b,,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  // ';' splitting keeps comma-bearing items whole — the --tenants shape.
  EXPECT_EQ(cli::split_list("a:w=bursty:1,2,3,4;b", ';'),
            (std::vector<std::string>{"a:w=bursty:1,2,3,4", "b"}));
  EXPECT_TRUE(cli::split_list("", ';').empty());
  EXPECT_TRUE(cli::split_list(";;", ';').empty());
}

TEST(CliCommon, NumbersCountsAndCatalogues) {
  EXPECT_EQ(cli::parse_count("42", "--n"), 42u);
  EXPECT_THROW(cli::parse_count("-1", "--n"), cli::UsageError);
  EXPECT_THROW(cli::parse_count("4x", "--n"), cli::UsageError);
  EXPECT_DOUBLE_EQ(cli::parse_number("0.25", "--t"), 0.25);
  EXPECT_THROW(cli::parse_number("fast", "--t"), cli::UsageError);
  EXPECT_NO_THROW(cli::require_known("b", {"a", "b"}, "thing"));
  try {
    cli::require_known("z", {"a", "b"}, "thing");
    FAIL() << "expected cli::UsageError";
  } catch (const cli::UsageError& e) {
    // The catalogue rides along in the message.
    EXPECT_NE(std::string(e.what()).find("a b"), std::string::npos);
  }
}

// -------------------------------------------------------------- aggregation

TEST(Summarise, GroupsByScenarioAndPolicy) {
  ExperimentSpec spec = small_spec();
  spec.horizon = 20.0;
  const SweepRunner runner;
  const SweepResult result = runner.run(spec, 1);
  const std::vector<GroupSummary> groups = summarise(result);

  // 2 scenarios x 2 policies, each pooling 2 periods x 2 replicas.
  ASSERT_EQ(groups.size(), 4u);
  for (const GroupSummary& group : groups) {
    EXPECT_EQ(group.cells, 4u);
    EXPECT_EQ(group.errors, 0u);
    EXPECT_EQ(group.final_gap.count(), 4u);
  }
  // Order of first appearance follows the canonical expansion order.
  EXPECT_EQ(groups[0].scenario, "braess");
  EXPECT_EQ(groups[0].policy, "replicator");
  EXPECT_EQ(groups[1].policy, "alpha:0.5");
  EXPECT_EQ(groups[2].scenario, "uniform-links-8");

  const Table table = summary_table(groups);
  EXPECT_EQ(table.rows(), groups.size());
}

}  // namespace
}  // namespace staleflow
