// Tests for the sweep subsystem: thread pool, scenario registry, grid
// expansion, aggregation, and the 1-thread vs 4-thread determinism
// contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "equilibrium/potential.h"
#include "net/flow.h"
#include "net/generators.h"
#include "sweep/sweep.h"
#include "util/thread_pool.h"

namespace staleflow {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, RethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed; the pool keeps working.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForCoversIndexRange) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<int> hits(257, 0);
    parallel_for(hits.size(), threads,
                 [&hits](std::size_t i) { hits[i] += 1; });
    for (const int hit : hits) EXPECT_EQ(hit, 1);
  }
}

// ---------------------------------------------------------- ScenarioRegistry

TEST(ScenarioRegistry, BuiltinHasKnownScenarios) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  EXPECT_GE(registry.size(), 10u);
  EXPECT_TRUE(registry.contains("two-link-pulse"));
  EXPECT_TRUE(registry.contains("braess"));
  EXPECT_TRUE(registry.contains("grid-3x3"));
  EXPECT_FALSE(registry.contains("no-such-scenario"));
  EXPECT_THROW(registry.at("no-such-scenario"), std::out_of_range);
}

TEST(ScenarioRegistry, FactoriesAreDeterministicGivenSeed) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  for (const std::string& name : registry.names()) {
    Rng a(123), b(123);
    const Instance first = registry.at(name).make(a);
    const Instance second = registry.at(name).make(b);
    EXPECT_EQ(first.path_count(), second.path_count()) << name;
    // Same structure and same latency landscape: evaluate at uniform flow.
    const FlowVector flow = FlowVector::uniform(first);
    EXPECT_DOUBLE_EQ(potential(first, flow.values()),
                     potential(second, flow.values()))
        << name;
  }
}

TEST(ScenarioRegistry, RejectsDuplicatesAndBadEntries) {
  ScenarioRegistry registry;
  registry.add({"x", "", [](Rng&) { return braess(); }});
  EXPECT_THROW(registry.add({"x", "", [](Rng&) { return braess(); }}),
               std::invalid_argument);
  EXPECT_THROW(registry.add({"", "", [](Rng&) { return braess(); }}),
               std::invalid_argument);
  EXPECT_THROW(registry.add({"y", "", nullptr}), std::invalid_argument);
}

// ------------------------------------------------------------- named_policy

TEST(NamedPolicy, ParsesTheFullGrammar) {
  const Instance instance = braess();
  for (const char* name : {"replicator", "uniform-linear", "alpha:0.5",
                           "logit:10", "naive", "relative-slack",
                           "relative-slack:0.25", "safe"}) {
    const PolicySpec spec = named_policy(name);
    EXPECT_EQ(spec.name, name);
    const Policy policy = spec.make(instance, 0.1);
    EXPECT_FALSE(policy.name().empty());
  }
}

TEST(NamedPolicy, RejectsUnknownAndMalformed) {
  EXPECT_THROW(named_policy("no-such-policy"), std::invalid_argument);
  EXPECT_THROW(named_policy("alpha"), std::invalid_argument);
  EXPECT_THROW(named_policy("alpha:zero"), std::invalid_argument);
  EXPECT_THROW(named_policy("alpha:-1"), std::invalid_argument);
  EXPECT_THROW(named_policy("logit"), std::invalid_argument);
}

// ------------------------------------------------------------------- expand

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.scenarios = {"braess", "uniform-links-8"};
  spec.policies = {named_policy("replicator"), named_policy("alpha:0.5")};
  spec.update_periods = {0.05, 0.1};
  spec.replicas = 2;
  spec.horizon = 10.0;
  return spec;
}

TEST(Expand, CartesianProductInCanonicalOrder) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  const ExperimentSpec spec = small_spec();
  const std::vector<CellSpec> cells = expand(spec, registry);

  ASSERT_EQ(cells.size(), cell_count(spec));
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * 2u);

  // Indices are positions; order is scenario-major, then policy, period,
  // replica.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
  EXPECT_EQ(cells[0].scenario, "braess");
  EXPECT_EQ(cells[0].policy, "replicator");
  EXPECT_DOUBLE_EQ(cells[0].update_period, 0.05);
  EXPECT_EQ(cells[0].replica, 0u);
  EXPECT_EQ(cells[1].replica, 1u);
  EXPECT_DOUBLE_EQ(cells[2].update_period, 0.1);
  EXPECT_EQ(cells[4].policy, "alpha:0.5");
  EXPECT_EQ(cells[8].scenario, "uniform-links-8");

  // Every combination appears exactly once.
  std::set<std::string> combos;
  for (const CellSpec& cell : cells) {
    std::ostringstream key;
    key << cell.scenario << '|' << cell.policy << '|' << cell.update_period
        << '|' << cell.replica;
    EXPECT_TRUE(combos.insert(key.str()).second);
  }
}

TEST(Expand, ValidatesTheSpec) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();

  ExperimentSpec spec = small_spec();
  spec.scenarios.clear();
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = small_spec();
  spec.scenarios.push_back("no-such-scenario");
  EXPECT_THROW(expand(spec, registry), std::out_of_range);

  spec = small_spec();
  spec.scenarios.push_back("braess");  // duplicate
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = small_spec();
  spec.policies.clear();
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = small_spec();
  spec.policies.push_back(named_policy("replicator"));  // duplicate
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = small_spec();
  spec.update_periods = {0.1, 0.0};
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = small_spec();
  spec.replicas = 0;
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);

  spec = small_spec();
  spec.horizon = 0.0;
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);
}

// ------------------------------------------------------------------- runner

TEST(SweepRunner, RunsEveryCellAndConvergesOnEasyInstances) {
  ExperimentSpec spec = small_spec();
  spec.horizon = 50.0;
  const SweepRunner runner;
  const SweepResult result = runner.run(spec, 1);

  ASSERT_EQ(result.cells.size(), cell_count(spec));
  for (const CellResult& cell : result.cells) {
    EXPECT_TRUE(cell.ok) << cell.error;
    EXPECT_GT(cell.phases, 0u);
    EXPECT_GT(cell.paths, 0u);
    EXPECT_GE(cell.final_gap, 0.0);
    // Smooth policies on these benign instances must make clear progress
    // toward equilibrium within the horizon (the gentle alpha:0.5 policy
    // is the slowest of the grid; uniform initial gaps are O(0.1..1)).
    EXPECT_LT(cell.final_gap, 0.05)
        << cell.cell.scenario << " / " << cell.cell.policy;
  }
}

TEST(SweepRunner, CellErrorsAreRecordedNotThrown) {
  ScenarioRegistry registry;
  registry.add({"ok", "", [](Rng&) { return braess(); }});
  registry.add({"broken", "", [](Rng&) -> Instance {
                  throw std::runtime_error("generator exploded");
                }});

  ExperimentSpec spec;
  spec.scenarios = {"ok", "broken"};
  spec.policies = {named_policy("replicator")};
  spec.update_periods = {0.1};
  spec.horizon = 5.0;

  const SweepRunner runner(std::move(registry));
  const SweepResult result = runner.run(spec, 2);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_TRUE(result.cells[0].ok);
  EXPECT_FALSE(result.cells[1].ok);
  EXPECT_NE(result.cells[1].error.find("generator exploded"),
            std::string::npos);
}

TEST(SweepRunner, RoundAndAgentSimulatorsRun) {
  ExperimentSpec spec;
  spec.scenarios = {"braess"};
  spec.policies = {named_policy("uniform-linear")};
  spec.update_periods = {0.1};
  spec.horizon = 5.0;

  const SweepRunner runner;
  spec.simulator = SimulatorKind::kRound;
  SweepResult rounds = runner.run(spec, 1);
  ASSERT_EQ(rounds.cells.size(), 1u);
  EXPECT_TRUE(rounds.cells[0].ok) << rounds.cells[0].error;
  EXPECT_GT(rounds.cells[0].phases, 0u);

  spec.simulator = SimulatorKind::kAgent;
  spec.num_agents = 500;
  SweepResult agents = runner.run(spec, 1);
  ASSERT_EQ(agents.cells.size(), 1u);
  EXPECT_TRUE(agents.cells[0].ok) << agents.cells[0].error;
  EXPECT_GT(agents.cells[0].phases, 0u);
}

// --------------------------------------------------------------- determinism

/// The determinism contract: a sweep is bit-identical for 1 vs 4 threads.
TEST(SweepRunner, BitIdenticalAcrossThreadCounts) {
  ExperimentSpec spec = small_spec();
  // Random scenarios make this a real test: instance generation draws from
  // the per-cell stream, so any scheduling leak would shift results.
  spec.scenarios = {"braess", "random-links-8", "grid-3x3"};
  spec.horizon = 20.0;

  const SweepRunner runner;
  const SweepResult one = runner.run(spec, 1);
  const SweepResult four = runner.run(spec, 4);

  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    const CellResult& a = one.cells[i];
    const CellResult& b = four.cells[i];
    EXPECT_EQ(a.cell.scenario, b.cell.scenario);
    EXPECT_EQ(a.cell.policy, b.cell.policy);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.phases, b.phases);
    EXPECT_EQ(a.converged, b.converged);
    // Exact bit equality, not tolerance: the same instruction sequence
    // must have run regardless of scheduling.
    EXPECT_EQ(a.final_gap, b.final_gap) << i;
    EXPECT_EQ(a.final_potential, b.final_potential) << i;
    EXPECT_EQ(a.time_to_converge, b.time_to_converge) << i;
    EXPECT_EQ(a.oscillation_amplitude, b.oscillation_amplitude) << i;
  }
}

TEST(SweepRunner, CsvOutputIsByteIdenticalAcrossThreadCounts) {
  ExperimentSpec spec = small_spec();
  spec.scenarios = {"braess", "random-links-8"};
  spec.horizon = 10.0;

  const SweepRunner runner;
  const std::string path_one = "sweep_test_cells_1.csv";
  const std::string path_four = "sweep_test_cells_4.csv";
  write_cells_csv(path_one, runner.run(spec, 1));
  write_cells_csv(path_four, runner.run(spec, 4));

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string one = slurp(path_one);
  const std::string four = slurp(path_four);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
  std::remove(path_one.c_str());
  std::remove(path_four.c_str());
}

// -------------------------------------------------------------- aggregation

TEST(Summarise, GroupsByScenarioAndPolicy) {
  ExperimentSpec spec = small_spec();
  spec.horizon = 20.0;
  const SweepRunner runner;
  const SweepResult result = runner.run(spec, 1);
  const std::vector<GroupSummary> groups = summarise(result);

  // 2 scenarios x 2 policies, each pooling 2 periods x 2 replicas.
  ASSERT_EQ(groups.size(), 4u);
  for (const GroupSummary& group : groups) {
    EXPECT_EQ(group.cells, 4u);
    EXPECT_EQ(group.errors, 0u);
    EXPECT_EQ(group.final_gap.count(), 4u);
  }
  // Order of first appearance follows the canonical expansion order.
  EXPECT_EQ(groups[0].scenario, "braess");
  EXPECT_EQ(groups[0].policy, "replicator");
  EXPECT_EQ(groups[1].policy, "alpha:0.5");
  EXPECT_EQ(groups[2].scenario, "uniform-links-8");

  const Table table = summary_table(groups);
  EXPECT_EQ(table.rows(), groups.size());
}

}  // namespace
}  // namespace staleflow
