// Cross-tenant isolation property suite for the multi-tenant registry
// (ctest label `tenant`, run under the sanitizer CI job).
//
// The contract under test: a tenant's deterministic telemetry — its
// per-epoch FNV digest, final flow and route-latency histogram — is
// byte-identical whether the tenant runs alone (as a plain RouteServer
// or a one-tenant registry), co-scheduled with 1/3/7 heterogeneous
// neighbours, or on any worker-thread count (1/4/8). Co-tenancy and
// parallelism may only change wall-clock figures.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/exec.h"
#include "net/flow.h"
#include "net/generators.h"
#include "service/service.h"
#include "sweep/spec.h"
#include "util/rng.h"

namespace staleflow {
namespace {

/// Everything one tenant borrows for a run, owned together so tests can
/// build heterogeneous fleets compactly.
struct TenantFixture {
  std::string name;
  Instance instance;
  Policy policy;
  WorkloadPtr workload;
  TenantOptions options;
};

TenantFixture make_tenant(const std::string& name,
                          const std::string& scenario,
                          const std::string& policy_spec,
                          const std::string& workload_spec,
                          std::size_t clients, std::size_t shards,
                          std::uint64_t seed, std::size_t weight = 1,
                          std::size_t epochs = 12,
                          std::size_t sub_batch = 16384) {
  Instance instance = scenario == "braess"
                          ? braess(true)
                          : uniform_parallel_links(8, 0.5, 1.0);
  Policy policy = named_policy(policy_spec).make(instance, 0.1);
  TenantFixture tenant{name, std::move(instance), std::move(policy),
                       make_workload(workload_spec), TenantOptions{}};
  tenant.options.server.update_period = 0.1;
  tenant.options.server.epochs = epochs;
  tenant.options.server.num_clients = clients;
  tenant.options.server.shards = shards;
  tenant.options.server.seed = seed;
  tenant.options.server.sub_batch_queries = sub_batch;
  tenant.options.server.record_latency = false;  // replay mode
  tenant.options.weight = weight;
  return tenant;
}

/// The deterministic fingerprint the isolation contract pins.
struct Fingerprint {
  std::uint64_t digest = 0;
  std::vector<double> final_flow;
  LogHistogram route_latency;
  std::size_t queries = 0;
};

Fingerprint fingerprint(const RouteServerResult& result) {
  Fingerprint fp;
  fp.digest = telemetry_digest(result.epochs);
  fp.final_flow.assign(result.final_flow.values().begin(),
                       result.final_flow.values().end());
  fp.route_latency = result.route_latency;
  fp.queries = result.total_queries;
  return fp;
}

void expect_identical(const Fingerprint& a, const Fingerprint& b,
                      const std::string& label) {
  EXPECT_EQ(a.digest, b.digest) << label;
  EXPECT_EQ(a.queries, b.queries) << label;
  ASSERT_EQ(a.final_flow.size(), b.final_flow.size()) << label;
  for (std::size_t p = 0; p < a.final_flow.size(); ++p) {
    EXPECT_EQ(a.final_flow[p], b.final_flow[p]) << label << " path " << p;
  }
  EXPECT_TRUE(a.route_latency == b.route_latency) << label;
}

/// Runs a fleet on `threads` workers and fingerprints every tenant.
std::map<std::string, Fingerprint> run_fleet(
    const std::vector<const TenantFixture*>& fleet, std::size_t threads) {
  TenantRegistry registry;
  for (const TenantFixture* tenant : fleet) {
    registry.add(tenant->name, tenant->instance, tenant->policy,
                 *tenant->workload, tenant->options);
  }
  Executor executor(threads);
  const MultiTenantResult result = registry.run(executor);
  std::map<std::string, Fingerprint> out;
  for (const TenantResult& tenant : result.tenants) {
    out.emplace(tenant.name, fingerprint(tenant.server));
  }
  return out;
}

// The tenant whose bytes every test watches: busy enough to migrate and
// to split under a forced sub-batch threshold.
TenantFixture watched_tenant() {
  return make_tenant("watched", "braess", "replicator", "closed-loop:3000",
                     1000, 8, /*seed=*/17);
}

// Heterogeneous neighbours: different scenarios, policies, workload
// shapes, fleet sizes, shard counts, seeds and weights.
std::vector<TenantFixture> neighbour_pool() {
  std::vector<TenantFixture> pool;
  pool.push_back(make_tenant("n0", "links", "replicator", "poisson:20000",
                             2000, 4, 5));
  pool.push_back(make_tenant("n1", "braess", "alpha:0.5",
                             "bursty:30000,2000,3,2", 1500, 2, 7,
                             /*weight=*/2));
  pool.push_back(make_tenant("n2", "links", "logit:10", "closed-loop:500",
                             200, 1, 11, /*weight=*/3, /*epochs=*/20));
  pool.push_back(make_tenant("n3", "braess", "uniform-linear",
                             "diurnal:10000,0.8,2.0", 800, 8, 13));
  pool.push_back(make_tenant("n4", "links", "replicator",
                             "closed-loop-lat:4000,0.1", 1000, 4, 19));
  pool.push_back(make_tenant("n5", "braess", "relative-slack",
                             "poisson:5000", 500, 2, 23, /*weight=*/2,
                             /*epochs=*/6));
  pool.push_back(make_tenant("n6", "links", "alpha:0.25", "closed-loop:100",
                             100, 1, 29, /*weight=*/1, /*epochs=*/30));
  return pool;
}

// --------------------------------------------------- registry == RouteServer

TEST(TenantRegistry, OneTenantMatchesPlainRouteServer) {
  const TenantFixture tenant = watched_tenant();

  RouteServer server(tenant.instance, tenant.policy, *tenant.workload);
  const Fingerprint solo = fingerprint(
      server.run(FlowVector::uniform(tenant.instance),
                 tenant.options.server));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto fleet = run_fleet({&tenant}, threads);
    expect_identical(solo, fleet.at("watched"),
                     "registry-of-one @" + std::to_string(threads));
  }
}

// ------------------------------------------------- co-scheduling invariance

TEST(TenantIsolation, DigestInvariantWithOneThreeSevenNeighbours) {
  const TenantFixture watched = watched_tenant();
  const std::vector<TenantFixture> neighbours = neighbour_pool();

  const Fingerprint alone = run_fleet({&watched}, 1).at("watched");

  for (const std::size_t count : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}}) {
    std::vector<const TenantFixture*> fleet = {&watched};
    for (std::size_t i = 0; i < count; ++i) fleet.push_back(&neighbours[i]);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const auto results = run_fleet(fleet, threads);
      expect_identical(alone, results.at("watched"),
                       "with " + std::to_string(count) + " neighbours @" +
                           std::to_string(threads) + " threads");
    }
  }
}

TEST(TenantIsolation, NeighboursAreUnperturbedToo) {
  // Symmetry: the neighbours' own digests must equal THEIR solo runs.
  const TenantFixture watched = watched_tenant();
  const std::vector<TenantFixture> neighbours = neighbour_pool();

  std::map<std::string, Fingerprint> solo;
  for (const TenantFixture& n : neighbours) {
    solo.emplace(n.name, run_fleet({&n}, 1).at(n.name));
  }

  std::vector<const TenantFixture*> fleet = {&watched};
  for (const TenantFixture& n : neighbours) fleet.push_back(&n);
  const auto together = run_fleet(fleet, 4);
  for (const TenantFixture& n : neighbours) {
    expect_identical(solo.at(n.name), together.at(n.name), n.name);
  }
}

TEST(TenantIsolation, ForcedSplitTenantNextToTinyTenant) {
  // A skewed bursty tenant with the split threshold forced low (every
  // on-peak shard fans out into many sub-batch tasks) co-scheduled with
  // a tiny single-shard tenant: both keep their solo bytes at 1, 4 and 8
  // threads.
  const TenantFixture splitter = make_tenant(
      "splitter", "links", "replicator", "bursty:30000,2000,3,2", 1000, 4,
      23, /*weight=*/1, /*epochs=*/15, /*sub_batch=*/128);
  const TenantFixture tiny = make_tenant("tiny", "braess", "replicator",
                                         "closed-loop:50", 50, 1, 31);

  const Fingerprint splitter_alone = run_fleet({&splitter}, 1).at("splitter");
  const Fingerprint tiny_alone = run_fleet({&tiny}, 1).at("tiny");
  // The forced split actually split: well above one sub-batch per shard.
  EXPECT_GT(splitter_alone.queries, 4u * 128u);

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    const auto results = run_fleet({&splitter, &tiny}, threads);
    expect_identical(splitter_alone, results.at("splitter"),
                     "splitter @" + std::to_string(threads));
    expect_identical(tiny_alone, results.at("tiny"),
                     "tiny @" + std::to_string(threads));
  }
}

TEST(TenantIsolation, ByteIdenticalAcrossOneFourEightThreads) {
  const TenantFixture watched = watched_tenant();
  const std::vector<TenantFixture> neighbours = neighbour_pool();
  std::vector<const TenantFixture*> fleet = {&watched};
  for (const TenantFixture& n : neighbours) fleet.push_back(&n);

  const auto reference = run_fleet(fleet, 1);
  for (const std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    const auto results = run_fleet(fleet, threads);
    for (const auto& [name, fp] : reference) {
      expect_identical(fp, results.at(name),
                       name + " @" + std::to_string(threads));
    }
  }
}

// ------------------------------------------------------ weighted scheduling

TEST(TenantScheduler, WeightedTenantsMakeProportionalProgress) {
  // weight 3 vs weight 1, equal epoch budgets: whenever the light tenant
  // has finished k epochs, the heavy one has finished ~3k. The observer
  // sees epochs in completion order, so prefix counts measure progress.
  const TenantFixture heavy = make_tenant("heavy", "braess", "replicator",
                                          "closed-loop:200", 100, 1, 3,
                                          /*weight=*/3, /*epochs=*/30);
  const TenantFixture light = make_tenant("light", "braess", "replicator",
                                          "closed-loop:200", 100, 1, 5,
                                          /*weight=*/1, /*epochs=*/30);

  TenantRegistry registry;
  registry.add(heavy.name, heavy.instance, heavy.policy, *heavy.workload,
               heavy.options);
  registry.add(light.name, light.instance, light.policy, *light.workload,
               light.options);

  Executor executor(1);
  std::size_t heavy_done = 0;
  std::vector<std::size_t> heavy_at_light;  // heavy's progress per light epoch
  const MultiTenantResult result = registry.run(
      executor, [&](std::size_t tenant, const EpochSummary&) {
        if (tenant == 0) {
          ++heavy_done;
        } else {
          heavy_at_light.push_back(heavy_done);
        }
      });

  ASSERT_EQ(result.tenants[0].server.epochs.size(), 30u);
  ASSERT_EQ(result.tenants[1].server.epochs.size(), 30u);
  // While both tenants are active the ratio tracks the weights (the tail
  // where the heavy tenant has exhausted its budget is excluded).
  ASSERT_GE(heavy_at_light.size(), 10u);
  for (std::size_t k = 1; k <= 9; ++k) {
    const std::size_t progress = heavy_at_light[k - 1];
    EXPECT_GE(progress + 1, 3 * k) << "light epoch " << k;
    EXPECT_LE(progress, 3 * k + 3) << "light epoch " << k;
  }
  EXPECT_GT(result.rounds, 30u);  // the light tenant needed >1 round/epoch
}

TEST(TenantScheduler, WeightsDoNotChangeAnyTenantsBytes) {
  // Same fleet, weights 1/1 vs 3/1: scheduling changes, bytes do not.
  TenantFixture a = make_tenant("a", "braess", "replicator",
                                "closed-loop:500", 200, 2, 7);
  TenantFixture b = make_tenant("b", "links", "alpha:0.5", "poisson:4000",
                                400, 4, 9);
  const auto even = run_fleet({&a, &b}, 2);
  a.options.weight = 3;
  const auto skewed = run_fleet({&a, &b}, 2);
  expect_identical(even.at("a"), skewed.at("a"), "a");
  expect_identical(even.at("b"), skewed.at("b"), "b");
}

// ------------------------------------------------------------- registry API

TEST(TenantRegistry, ValidatesNamesWeightsAndEmptiness) {
  const TenantFixture tenant = watched_tenant();
  TenantRegistry registry;
  Executor executor(1);
  EXPECT_THROW(registry.run(executor), std::invalid_argument);  // empty

  EXPECT_THROW(registry.add("", tenant.instance, tenant.policy,
                            *tenant.workload, tenant.options),
               std::invalid_argument);
  EXPECT_THROW(registry.add("bad name", tenant.instance, tenant.policy,
                            *tenant.workload, tenant.options),
               std::invalid_argument);
  EXPECT_THROW(registry.add("semi;colon", tenant.instance, tenant.policy,
                            *tenant.workload, tenant.options),
               std::invalid_argument);

  registry.add("ok", tenant.instance, tenant.policy, *tenant.workload,
               tenant.options);
  EXPECT_THROW(registry.add("ok", tenant.instance, tenant.policy,
                            *tenant.workload, tenant.options),
               std::invalid_argument);  // duplicate

  TenantOptions zero_weight = tenant.options;
  zero_weight.weight = 0;
  EXPECT_THROW(registry.add("w0", tenant.instance, tenant.policy,
                            *tenant.workload, zero_weight),
               std::invalid_argument);

  TenantOptions bad_server = tenant.options;
  bad_server.server.epochs = 0;
  registry.add("bad", tenant.instance, tenant.policy, *tenant.workload,
               bad_server);
  EXPECT_THROW(registry.run(executor), std::invalid_argument);
}

TEST(TenantRegistry, SnapshotExposesEachTenantsRcuReadPath) {
  const TenantFixture a = watched_tenant();
  const TenantFixture b = make_tenant("b", "links", "replicator",
                                      "closed-loop:100", 100, 1, 3,
                                      /*weight=*/1, /*epochs=*/5);
  TenantRegistry registry;
  registry.add(a.name, a.instance, a.policy, *a.workload, a.options);
  registry.add(b.name, b.instance, b.policy, *b.workload, b.options);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.name(0), "watched");
  EXPECT_EQ(registry.name(1), "b");
  EXPECT_THROW(registry.name(2), std::out_of_range);

  // Before any run: no snapshot published.
  EXPECT_EQ(registry.snapshot(0), nullptr);
  EXPECT_THROW(registry.snapshot(2), std::out_of_range);

  Executor executor(2);
  registry.run(executor);
  // After the run each tenant's store holds ITS final board: epoch counts
  // differ per tenant (12 vs 5 epochs served).
  ASSERT_NE(registry.snapshot(0), nullptr);
  ASSERT_NE(registry.snapshot(1), nullptr);
  EXPECT_EQ(registry.snapshot(0)->epoch(), 12u);
  EXPECT_EQ(registry.snapshot(1)->epoch(), 5u);
}

TEST(TenantRegistry, RerunRebuildsFromScratch) {
  const TenantFixture tenant = watched_tenant();
  TenantRegistry registry;
  registry.add(tenant.name, tenant.instance, tenant.policy,
               *tenant.workload, tenant.options);
  Executor executor(2);
  const Fingerprint first =
      fingerprint(registry.run(executor).tenants[0].server);
  const Fingerprint second =
      fingerprint(registry.run(executor).tenants[0].server);
  expect_identical(first, second, "rerun");
}

}  // namespace
}  // namespace staleflow
