// Trace-plane property suite (ctest label `trace`, run under the
// sanitizer CI job).
//
// Two contracts under test. First, recording is digest-neutral: a run
// served with trace::start is byte-identical in its deterministic
// telemetry — per-epoch FNV digest, final flow, query totals — to the
// same run untraced, single-server and multi-tenant alike. Wall-clock
// spans are telemetry ABOUT the run, never input TO it. Second, the
// trace file inherits the WAL's crash posture: a trace torn at any byte
// (kill mid-flush, flipped bit, rotated-away tail) decodes up to the
// last verified record and never throws for tail corruption — only for
// files that are not traces at all.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec.h"
#include "net/flow.h"
#include "net/generators.h"
#include "service/service.h"
#include "sweep/spec.h"
#include "trace/trace.h"
#include "util/binio.h"

namespace staleflow {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "staleflow_trace_" + name;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string header_payload(std::uint32_t version = trace::kTraceVersion,
                           const std::string& producer = "trace_test") {
  binio::Writer w;
  w.u32(version);
  w.str(producer);
  return std::string(w.data());
}

std::string event_batch_payload(std::uint32_t worker,
                                const std::vector<trace::TraceEvent>& events) {
  binio::Writer w;
  w.u32(worker);
  w.u64(events.size());
  for (const trace::TraceEvent& event : events) trace::encode_event(w, event);
  return std::string(w.data());
}

trace::TraceEvent sample_event(std::uint64_t epoch) {
  trace::TraceEvent event;
  event.kind = trace::EventKind::kSubBatchSpan;
  event.tenant = 3;
  event.epoch = epoch;
  event.arg = (std::uint64_t{5} << 32) | 7;
  event.begin_ns = 1000 * epoch;
  event.end_ns = 1000 * epoch + 250;
  event.value = 4096;
  return event;
}

/// A minimal well-formed trace: header + one two-event batch.
std::string small_trace() {
  std::ostringstream out(std::ios::binary);
  out.write(trace::kTraceMagic, sizeof(trace::kTraceMagic));
  trace::append_record(out, trace::TraceRecordType::kTraceHeader,
                       header_payload());
  trace::append_record(out, trace::TraceRecordType::kEventBatch,
                       event_batch_payload(0, {sample_event(1),
                                               sample_event(2)}));
  return out.str();
}

// ----------------------------------------------------------- event codec

TEST(TraceCodec, EventRoundTripIsExact) {
  const trace::TraceEvent original = sample_event(42);
  binio::Writer w;
  trace::encode_event(w, original);
  EXPECT_EQ(w.data().size(), trace::kEventBytes);

  binio::Reader r(w.data());
  const trace::TraceEvent decoded = trace::decode_event(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded.kind, original.kind);
  EXPECT_EQ(decoded.tenant, original.tenant);
  EXPECT_EQ(decoded.epoch, original.epoch);
  EXPECT_EQ(decoded.arg, original.arg);
  EXPECT_EQ(decoded.begin_ns, original.begin_ns);
  EXPECT_EQ(decoded.end_ns, original.end_ns);
  EXPECT_EQ(decoded.value, original.value);
}

TEST(TraceCodec, EveryKindHasAStableName) {
  const std::vector<trace::EventKind> kinds = {
      trace::EventKind::kEpochSpan,      trace::EventKind::kSubBatchSpan,
      trace::EventKind::kSnapshotPublish, trace::EventKind::kSchedulerRound,
      trace::EventKind::kGraphSpan,      trace::EventKind::kWalAppend};
  std::set<std::string> names;
  for (const trace::EventKind kind : kinds) {
    names.insert(std::string(trace::event_kind_name(kind)));
  }
  EXPECT_EQ(names.size(), kinds.size());  // distinct
  EXPECT_TRUE(names.count("epoch"));
  EXPECT_TRUE(names.count("sub_batch"));
}

// -------------------------------------------- torn-tail / corruption scan

TEST(TraceRecovery, CleanFileScansCompletely) {
  const std::string path = temp_path("clean");
  const std::string bytes = small_trace();
  write_file(path, bytes);

  const trace::TraceScan scan = trace::scan_trace(path);
  EXPECT_FALSE(scan.truncated);
  EXPECT_EQ(scan.valid_bytes, bytes.size());
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].type, trace::TraceRecordType::kTraceHeader);
  EXPECT_EQ(scan.records[1].type, trace::TraceRecordType::kEventBatch);
}

TEST(TraceRecovery, TornTailTruncatesAtEveryByte) {
  const std::string bytes = small_trace();
  const std::string path = temp_path("torn");

  // Find the header record's end: scan the full file once.
  write_file(path, bytes);
  const std::uint64_t header_end = trace::scan_trace(path).records[0].end_offset;

  for (std::size_t cut = sizeof(trace::kTraceMagic); cut < bytes.size();
       ++cut) {
    write_file(path, bytes.substr(0, cut));
    // A cut strictly inside a record discards it (scan truncated); a cut
    // exactly at a record boundary is a clean shorter trace. Either way
    // the trusted prefix is a record boundary <= cut.
    const bool at_boundary =
        cut == sizeof(trace::kTraceMagic) || cut == header_end;
    const trace::TraceScan scan = trace::scan_trace(path);
    EXPECT_EQ(scan.truncated, !at_boundary) << "cut at " << cut;
    EXPECT_LE(scan.valid_bytes, cut) << "cut at " << cut;
    EXPECT_TRUE(scan.valid_bytes == sizeof(trace::kTraceMagic) ||
                scan.valid_bytes == header_end)
        << "cut at " << cut << " valid " << scan.valid_bytes;
    // And the decoded view stays usable. Losing the header record itself
    // also counts as truncation ("empty trace"); only the cut exactly
    // after the header yields a complete-but-eventless trace.
    const trace::LoadedTrace loaded = trace::load_trace(path);
    EXPECT_EQ(loaded.truncated, cut != header_end) << "cut at " << cut;
    EXPECT_FALSE(loaded.clean_shutdown) << "cut at " << cut;
    EXPECT_TRUE(loaded.events.empty()) << "cut at " << cut;
  }
}

TEST(TraceRecovery, BitFlipRejectsTheRecordButKeepsThePrefix) {
  const std::string bytes = small_trace();
  const std::string path = temp_path("flip");
  write_file(path, bytes);
  const std::uint64_t header_end = trace::scan_trace(path).records[0].end_offset;

  // Flip one bit in every byte of the second record (length, type,
  // payload, checksum): each corruption must truncate at the header.
  for (std::size_t at = header_end; at < bytes.size(); ++at) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
    write_file(path, corrupt);
    const trace::TraceScan scan = trace::scan_trace(path);
    EXPECT_TRUE(scan.truncated) << "flip at " << at;
    EXPECT_EQ(scan.valid_bytes, header_end) << "flip at " << at;
    EXPECT_EQ(scan.records.size(), 1u) << "flip at " << at;
  }
}

TEST(TraceRecovery, EmptyAndRotatedFiles) {
  const std::string path = temp_path("empty");

  // Zero bytes: not a trace at all.
  write_file(path, "");
  EXPECT_THROW(trace::scan_trace(path), std::runtime_error);

  // Magic only — what a rotation leaves behind the instant after it
  // truncates the file: scans clean-but-empty, loads as truncated
  // (no header record) with zero events.
  write_file(path, std::string(trace::kTraceMagic,
                               sizeof(trace::kTraceMagic)));
  const trace::LoadedTrace loaded = trace::load_trace(path);
  EXPECT_TRUE(loaded.truncated);
  EXPECT_TRUE(loaded.events.empty());
  EXPECT_FALSE(loaded.clean_shutdown);

  // Wrong magic (a WAL, a text file): refused outright.
  write_file(path, "SFWAL1\n\0 not a trace");
  EXPECT_THROW(trace::scan_trace(path), std::runtime_error);

  EXPECT_THROW(trace::scan_trace(temp_path("missing")),
               std::runtime_error);
}

TEST(TraceRecovery, CorruptPayloadInsideValidFrameTruncates) {
  // A checksum-valid frame whose payload doesn't decode (header claiming
  // a future version) must truncate, not throw.
  const std::string path = temp_path("future");
  std::ostringstream out(std::ios::binary);
  out.write(trace::kTraceMagic, sizeof(trace::kTraceMagic));
  trace::append_record(out, trace::TraceRecordType::kTraceHeader,
                       header_payload(trace::kTraceVersion + 1));
  write_file(path, out.str());

  const trace::LoadedTrace loaded = trace::load_trace(path);
  EXPECT_TRUE(loaded.truncated);
  EXPECT_EQ(loaded.valid_bytes, sizeof(trace::kTraceMagic));
  EXPECT_TRUE(loaded.events.empty());
}

// ------------------------------------------------------ metrics registry

TEST(MetricsRegistry, SameNameSameCounterDenseIds) {
  trace::MetricsRegistry registry;
  trace::Counter& a = registry.counter("a.first");
  trace::Counter& b = registry.counter("b.second");
  EXPECT_EQ(&registry.counter("a.first"), &a);  // stable address
  a.add(5);
  a.inc();
  b.add(2);

  const std::vector<trace::CounterSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].id, 0u);
  EXPECT_EQ(samples[0].name, "a.first");
  EXPECT_EQ(samples[0].value, 6u);
  EXPECT_EQ(samples[1].id, 1u);
  EXPECT_EQ(samples[1].value, 2u);
}

TEST(TraceRing, DropsOnOverflowNeverBlocks) {
  trace::TraceRing ring(/*capacity_pow2=*/8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.try_push(sample_event(i));
  }
  EXPECT_EQ(ring.dropped(), 20u - 8u);

  std::vector<trace::TraceEvent> drained;
  ring.drain(drained);
  ASSERT_EQ(drained.size(), 8u);
  // FIFO: the oldest accepted events survive, in order.
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].epoch, i);
  }
}

TEST(TraceRing, RoundsCapacityUpToAPowerOfTwo) {
  // The index mask only works for power-of-two capacities; a request
  // like 5 used to corrupt the ring silently (mask 4 aliased slots).
  // Now it rounds up and the full rounded capacity is usable.
  EXPECT_EQ(trace::TraceRing(5).capacity(), 8u);
  EXPECT_EQ(trace::TraceRing(8).capacity(), 8u);
  EXPECT_EQ(trace::TraceRing(9).capacity(), 16u);
  EXPECT_EQ(trace::TraceRing(1).capacity(), 1u);
  EXPECT_EQ(trace::TraceRing(0).capacity(), 1u);  // never a zero mask

  trace::TraceRing ring(5);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.try_push(sample_event(i))) << i;
  }
  EXPECT_FALSE(ring.try_push(sample_event(8)));
  EXPECT_EQ(ring.dropped(), 1u);

  std::vector<trace::TraceEvent> drained;
  ring.drain(drained);
  ASSERT_EQ(drained.size(), 8u);
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].epoch, i);  // FIFO survives the rounding
  }
}

// ------------------------------------------------- recorder round trip

TEST(Recorder, MultiThreadedSessionRoundTrips) {
  const std::string path = temp_path("session");
  trace::start(path, "trace_test multithread");
  trace::MetricsRegistry::global().counter("test.ticks").add(123);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        trace::Span span(trace::EventKind::kGraphSpan,
                         static_cast<std::uint32_t>(t),
                         static_cast<std::uint64_t>(i));
        span.value(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  trace::stop();
  EXPECT_FALSE(trace::active());

  const trace::LoadedTrace loaded = trace::load_trace(path);
  EXPECT_FALSE(loaded.truncated);
  EXPECT_TRUE(loaded.clean_shutdown);
  EXPECT_EQ(loaded.producer, "trace_test multithread");
  EXPECT_EQ(loaded.version, trace::kTraceVersion);

  // Every event either landed in the file or was counted dropped —
  // nothing vanishes silently.
  EXPECT_EQ(loaded.events.size() + loaded.trailer_dropped,
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(loaded.trailer_events, loaded.events.size());

  // Per-thread ring order is preserved through the drain.
  std::map<std::uint32_t, std::uint64_t> last_epoch;
  std::set<std::uint32_t> tenants;
  for (const trace::LoadedEvent& event : loaded.events) {
    tenants.insert(event.event.tenant);
    EXPECT_LE(event.event.begin_ns, event.event.end_ns);
    auto it = last_epoch.find(event.event.tenant);
    if (it != last_epoch.end()) {
      EXPECT_LT(it->second, event.event.epoch);
    }
    last_epoch[event.event.tenant] = event.event.epoch;
  }
  EXPECT_EQ(tenants.size(), static_cast<std::size_t>(kThreads));

  // The registry counter was defined and sampled at least once (final
  // flush samples unconditionally).
  ASSERT_FALSE(loaded.counter_names.empty());
  bool saw_ticks = false;
  for (std::size_t id = 0; id < loaded.counter_names.size(); ++id) {
    if (loaded.counter_names[id] != "test.ticks") continue;
    saw_ticks = true;
    ASSERT_FALSE(loaded.counter_batches.empty());
    for (const auto& [cid, value] : loaded.counter_batches.back().values) {
      if (cid == id) EXPECT_GE(value, 123u);
    }
  }
  EXPECT_TRUE(saw_ticks);
}

TEST(Recorder, StartTwiceThrowsAndStopIsIdempotent) {
  const std::string path = temp_path("twice");
  trace::stop();  // no-op when idle
  trace::start(path, "one");
  EXPECT_THROW(trace::start(temp_path("other"), "two"), std::runtime_error);
  trace::stop();
  trace::stop();  // idempotent
  EXPECT_FALSE(trace::active());
}

// ------------------------------------------- digest neutrality (pinned)

RouteServerOptions serving_options(std::size_t epochs, std::uint64_t seed) {
  RouteServerOptions options;
  options.update_period = 0.1;
  options.epochs = epochs;
  options.num_clients = 800;
  options.shards = 4;
  options.seed = seed;
  options.sub_batch_queries = 16384;
  options.threads = 2;
  return options;
}

TEST(DigestNeutrality, SingleServerTracedEqualsUntraced) {
  const Instance instance = braess(true);
  const Policy policy = named_policy("replicator").make(instance, 0.1);
  const WorkloadPtr workload = make_workload("closed-loop:2000");
  const RouteServerOptions options = serving_options(10, 17);

  RouteServer untraced(instance, policy, *workload);
  const RouteServerResult baseline =
      untraced.run(FlowVector::uniform(instance), options);

  const std::string path = temp_path("digest_single");
  trace::start(path, "trace_test digest");
  RouteServer traced(instance, policy, *workload);
  const RouteServerResult recorded =
      traced.run(FlowVector::uniform(instance), options);
  trace::stop();

  EXPECT_EQ(telemetry_digest(recorded.epochs),
            telemetry_digest(baseline.epochs));
  EXPECT_EQ(recorded.total_queries, baseline.total_queries);
  for (std::size_t p = 0; p < baseline.final_flow.size(); ++p) {
    EXPECT_EQ(recorded.final_flow.values()[p],
              baseline.final_flow.values()[p]);
  }
  EXPECT_TRUE(recorded.route_latency == baseline.route_latency);

  // And the trace actually observed the run: one epoch span per served
  // epoch, one snapshot publish per epoch, sub-batch spans present.
  const trace::LoadedTrace loaded = trace::load_trace(path);
  EXPECT_TRUE(loaded.clean_shutdown);
  std::size_t epoch_spans = 0, publishes = 0, sub_batches = 0;
  for (const trace::LoadedEvent& event : loaded.events) {
    switch (event.event.kind) {
      case trace::EventKind::kEpochSpan: ++epoch_spans; break;
      case trace::EventKind::kSnapshotPublish: ++publishes; break;
      case trace::EventKind::kSubBatchSpan: ++sub_batches; break;
      default: break;
    }
  }
  EXPECT_EQ(epoch_spans, options.epochs);
  EXPECT_EQ(publishes, options.epochs);
  EXPECT_GT(sub_batches, 0u);
}

TEST(DigestNeutrality, MultiTenantTracedEqualsUntraced) {
  const Instance braess_net = braess(true);
  const Instance links = uniform_parallel_links(8, 0.5, 1.0);
  const Policy p0 = named_policy("replicator").make(braess_net, 0.1);
  const Policy p1 = named_policy("alpha:0.5").make(links, 0.1);
  const WorkloadPtr w0 = make_workload("closed-loop:1500");
  const WorkloadPtr w1 = make_workload("poisson:15000");

  const auto run_fleet = [&] {
    TenantRegistry registry;
    TenantOptions t0;
    t0.server = serving_options(8, 5);
    TenantOptions t1;
    t1.server = serving_options(12, 9);
    t1.weight = 2;
    registry.add("alpha", braess_net, p0, *w0, t0);
    registry.add("beta", links, p1, *w1, t1);
    Executor executor(3);
    return registry.run(executor);
  };

  const MultiTenantResult baseline = run_fleet();

  const std::string path = temp_path("digest_tenants");
  trace::start(path, "trace_test tenants");
  const MultiTenantResult recorded = run_fleet();
  trace::stop();

  ASSERT_EQ(recorded.tenants.size(), baseline.tenants.size());
  for (std::size_t i = 0; i < baseline.tenants.size(); ++i) {
    EXPECT_EQ(telemetry_digest(recorded.tenants[i].server.epochs),
              telemetry_digest(baseline.tenants[i].server.epochs))
        << baseline.tenants[i].name;
  }

  // Scheduler rounds were spanned and epoch spans carry tenant indices.
  const trace::LoadedTrace loaded = trace::load_trace(path);
  std::set<std::uint32_t> epoch_tenants;
  std::size_t rounds = 0, epoch_spans = 0;
  for (const trace::LoadedEvent& event : loaded.events) {
    if (event.event.kind == trace::EventKind::kSchedulerRound) ++rounds;
    if (event.event.kind == trace::EventKind::kEpochSpan) {
      ++epoch_spans;
      epoch_tenants.insert(event.event.tenant);
    }
  }
  EXPECT_GT(rounds, 0u);
  EXPECT_EQ(epoch_spans, 8u + 12u);  // every tenant epoch recorded
  EXPECT_EQ(epoch_tenants, (std::set<std::uint32_t>{0, 1}));
}

}  // namespace
}  // namespace staleflow
