// Tests for the util module: deterministic RNG, statistics, table/CSV.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/rng.h"
#include "util/statistics.h"
#include "util/table.h"

namespace staleflow {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(3);
  std::array<int, 10> buckets{};
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, 10'000, 500);
  }
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 30'000, 1'000);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40'000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(29);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zero), std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(negative), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(37);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// The recovery WAL's RNG-cursor contract: exporting the state mid-stream
// and restoring it elsewhere continues the stream exactly — every raw
// draw identical, from any cut point, no matter how far the original had
// advanced.
TEST(Rng, StateRoundTripContinuesStreamExactly) {
  for (const std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xDEADBEEFULL}) {
    Rng original(seed);
    for (int warmup = 0; warmup < 257; ++warmup) original();

    Rng restored = Rng::from_state(original.state());
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ(original(), restored()) << "seed " << seed << " draw " << i;
    }
  }
}

// split() is part of the cursor contract too: the epoch engines derive
// every per-epoch and per-sub-batch stream via split(), so a restored
// master must split into the SAME children, and the children's children
// must match as well.
TEST(Rng, StateRoundTripPreservesSplitStreams) {
  Rng original(99);
  for (int warmup = 0; warmup < 17; ++warmup) original.split();

  Rng restored = Rng::from_state(original.state());
  for (int s = 0; s < 32; ++s) {
    Rng child_a = original.split();
    Rng child_b = restored.split();
    Rng grandchild_a = child_a.split();
    Rng grandchild_b = child_b.split();
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(child_a(), child_b()) << "split " << s << " draw " << i;
      ASSERT_EQ(grandchild_a(), grandchild_b());
    }
  }
}

TEST(Rng, FromStateRejectsAllZeroState) {
  EXPECT_THROW(Rng::from_state({0, 0, 0, 0}), std::invalid_argument);
}

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, ThrowsWhenEmpty) {
  RunningStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_THROW(stats.mean(), std::logic_error);
  EXPECT_THROW(stats.min(), std::logic_error);
  EXPECT_THROW(stats.max(), std::logic_error);
  stats.add(1.0);
  EXPECT_THROW(stats.variance(), std::logic_error);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(41);
  RunningStats all, left, right;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, QuantilesOfKnownData) {
  std::vector<double> data;
  for (int i = 1; i <= 101; ++i) data.push_back(static_cast<double>(i));
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
  EXPECT_NEAR(s.p05, 6.0, 1e-9);
  EXPECT_NEAR(s.p95, 96.0, 1e-9);
}

TEST(Summary, EmptyInputIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Quantile, RejectsBadArguments) {
  const std::vector<double> data{1.0, 2.0};
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(data, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(data, 1.1), std::invalid_argument);
}

TEST(FitLine, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, RejectsDegenerateInput) {
  const std::vector<double> xs{1.0, 1.0}, ys{1.0, 2.0};
  EXPECT_THROW(fit_line(xs, ys), std::invalid_argument);
  const std::vector<double> one{1.0};
  EXPECT_THROW(fit_line(one, one), std::invalid_argument);
}

TEST(FitPower, RecoversExponent) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 16; ++i) {
    xs.push_back(i);
    ys.push_back(5.0 * std::pow(i, 1.7));
  }
  const PowerFit fit = fit_power(xs, ys);
  EXPECT_NEAR(fit.coefficient, 5.0, 1e-9);
  EXPECT_NEAR(fit.exponent, 1.7, 1e-9);
}

TEST(FitPower, RejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0}, ys{1.0, 2.0};
  EXPECT_THROW(fit_power(xs, ys), std::invalid_argument);
}

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "2.5"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 2u);
}

TEST(Table, RejectsBadShapes) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(TableFormatters, Format) {
  EXPECT_EQ(fmt(1.23456789, 3), "1.235");
  EXPECT_EQ(fmt_int(-42), "-42");
  EXPECT_EQ(fmt_bool(true), "yes");
  EXPECT_EQ(fmt_bool(false), "no");
  EXPECT_NE(fmt_sci(12345.678).find('e'), std::string::npos);
}

TEST(CsvWriter, WritesQuotedCells) {
  const std::string path = testing::TempDir() + "/staleflow_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"plain", "with,comma"});
    csv.add_row({"with\"quote", "x"});
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  EXPECT_NE(contents.find("a,b"), std::string::npos);
  EXPECT_NE(contents.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(contents.find("\"with\"\"quote\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongColumnCount) {
  const std::string path = testing::TempDir() + "/staleflow_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
  csv.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace staleflow
