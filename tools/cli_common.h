// Flag-parsing helpers shared by the command-line tools.
//
// All parse errors throw UsageError; each tool catches it in run_main and
// routes the message through its own usage() printer (usage text + exit
// 2). Count-valued flags go through parse_count, which rejects negatives
// instead of letting them wrap through a size_t cast.
#pragma once

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace staleflow::cli {

/// A bad command line: the message is shown above the usage text.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parses "--key value" pairs from args[from..]; flags listed in
/// `booleans` take no value and map to "1".
inline std::map<std::string, std::string> parse_flags(
    const std::vector<std::string>& args, std::size_t from,
    const std::set<std::string>& booleans) {
  std::map<std::string, std::string> flags;
  for (std::size_t i = from; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) != 0) {
      throw UsageError("unexpected argument " + args[i]);
    }
    const std::string key = args[i].substr(2);
    if (booleans.contains(key)) {
      flags[key] = "1";
    } else {
      if (i + 1 >= args.size()) throw UsageError("--" + key + " needs a value");
      flags[key] = args[++i];
    }
  }
  return flags;
}

/// Splits "a,b,c" into {"a","b","c"}, dropping empty items. The
/// delimiter is configurable ("a;b" with ';' — e.g. --tenants specs whose
/// items themselves contain commas).
inline std::vector<std::string> split_list(const std::string& text,
                                           char delimiter = ',') {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string item;
  while (std::getline(stream, item, delimiter)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// True when std::stod/std::stoll would silently skip leading space
/// (" 5", "\t5"): a flag value with embedded whitespace is a quoting
/// accident, not a number — reject it instead of guessing.
inline bool has_leading_space(const std::string& text) {
  return !text.empty() && std::isspace(static_cast<unsigned char>(text[0]));
}

/// Finite double. Rejects partial parses ("1.5x"), leading whitespace,
/// out-of-range values, and the inf/nan spellings std::stod accepts —
/// no flag in these tools means anything sane at infinity.
inline double parse_number(const std::string& text, const std::string& what) {
  try {
    if (has_leading_space(text)) throw std::invalid_argument(text);
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    if (!std::isfinite(value)) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw UsageError("bad number for " + what + ": " + text);
  }
}

inline long long parse_integer(const std::string& text,
                               const std::string& what) {
  try {
    if (has_leading_space(text)) throw std::invalid_argument(text);
    std::size_t used = 0;
    const long long value = std::stoll(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw UsageError("bad integer for " + what + ": " + text);
  }
}

/// Non-negative integer; "--epochs -1" is an error, not a 2^64 wrap.
inline std::size_t parse_count(const std::string& text,
                               const std::string& what) {
  const long long value = parse_integer(text, what);
  if (value < 0) throw UsageError(what + " must be >= 0, got " + text);
  return static_cast<std::size_t>(value);
}

/// count / seconds without the div-by-zero / inf hazards of a first
/// progress tick landing inside the clock's resolution: any elapsed
/// interval under a microsecond (or a non-finite quotient) reports 0.0
/// — "no rate yet" — instead of inf.
inline double safe_rate(double count, double seconds) {
  if (!(seconds > 1e-6)) return 0.0;
  const double rate = count / seconds;
  return std::isfinite(rate) ? rate : 0.0;
}

/// The recovery flags a serving tool accepts: `--wal <path>` starts a
/// fresh write-ahead epoch log, `--resume <path>` continues a crashed run
/// from one. Mutually exclusive — a resumed run appends to the SAME WAL.
struct RecoveryFlags {
  std::string wal;
  std::string resume;
  bool fresh_wal() const noexcept { return !wal.empty(); }
  bool resuming() const noexcept { return !resume.empty(); }
};

/// `--resume <path>` must name an existing, readable file.
inline void require_readable(const std::string& path,
                             const std::string& what) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) {
    throw UsageError("cannot read " + what + " file '" + path + "'");
  }
}

/// `--wal <path>` must be creatable/appendable NOW — failing at epoch 0
/// beats failing at the first cut, minutes into a run. The append-mode
/// probe creates a missing file but never touches existing bytes.
inline void require_writable(const std::string& path,
                             const std::string& what) {
  std::ofstream probe(path, std::ios::binary | std::ios::app);
  if (!probe) {
    throw UsageError("cannot write " + what + " path '" + path + "'");
  }
}

/// Validates a parsed RecoveryFlags pair against the rest of the command
/// line. `config_keys` lists the tool's run-configuration flags
/// (scenario, seed, epochs, ...): `--resume` takes the ENTIRE
/// configuration from the WAL header, so passing any of them alongside it
/// is a conflict, not an override — silently ignoring a `--seed` that
/// disagrees with the WAL would misreport what the run did. Runtime knobs
/// (threads, csv, report-every, quiet) stay legal; they are not dynamics
/// configuration. `--pipeline` is deliberately NOT a config key: the v3
/// WAL header records the logged schedule and a resume honors it, so an
/// agreeing flag is harmless — the tool itself rejects a contradictory
/// one after reading the header (exit 2, fail closed).
inline void validate_recovery_flags(
    const RecoveryFlags& recovery,
    const std::map<std::string, std::string>& flags,
    const std::set<std::string>& config_keys) {
  if (recovery.fresh_wal() && recovery.resuming()) {
    throw UsageError(
        "--wal and --resume are mutually exclusive (a resumed run appends "
        "to the WAL it resumes from)");
  }
  if (recovery.resuming()) {
    for (const auto& [key, value] : flags) {
      if (config_keys.contains(key)) {
        throw UsageError("--" + key +
                         " conflicts with --resume: the run configuration "
                         "comes from the WAL header");
      }
    }
    require_readable(recovery.resume, "--resume");
  }
  if (recovery.fresh_wal()) {
    require_writable(recovery.wal, "--wal");
  }
}

/// Rejects a value not present in `valid`, listing the catalogue.
inline void require_known(const std::string& value,
                          const std::vector<std::string>& valid,
                          const std::string& what) {
  for (const std::string& have : valid) {
    if (have == value) return;
  }
  std::string message = "unknown " + what + " '" + value + "'; valid:";
  for (const std::string& have : valid) message += ' ' + have;
  throw UsageError(message);
}

}  // namespace staleflow::cli
