// route_server_cli — run the online stale-routing service engine.
//
// Usage:
//   route_server_cli run [--scenario <name>] [--policy <spec>]
//                        [--period <T>] [--epochs <n>] [--clients <n>]
//                        [--workload <spec>] [--shards <k>]
//                        [--sub-batch <q>|auto] [--threads <k>]
//                        [--pin] [--pipeline]
//                        [--seed <s>] [--deterministic] [--csv <path>]
//                        [--tenants <spec>[;<spec>...]]
//                        [--wal <path> | --resume <path>]
//                        [--faults <spec>] [--trace <path>] [--progress <n>]
//                        [--report-every <n>] [--quiet]
//   route_server_cli list
//
// `list` prints the scenario catalogue plus the policy, workload and
// tenant grammars. `run` serves the workload for the configured number
// of epochs, printing per-epoch telemetry and a final summary including
// a digest of the deterministic telemetry (used by the CI golden test).
// With --deterministic, wall-clock latency recording is off and the CSV
// holds only deterministic columns — byte-identical for any --threads.
//
// --pin and --pipeline are runtime performance knobs, digest-neutral
// like --threads: --pin pins worker lane i to CPU core i (silently a
// no-op where unavailable); --pipeline overlaps each epoch's summary
// tail with the next epoch's serving. Pipelining composes with
// --wal/--resume — cuts are captured at the one-epoch overlap boundary
// and commit one graph behind the serving frontier — except for the
// feedback-driven closed-loop-lat workload, where the engine falls back
// to the strict schedule (stderr notice + engine.pipeline_fallbacks
// counter) and the WAL paths reject the flag up front so the logged
// header never misdescribes the run.
//
// --tenants switches to multi-tenant mode: each ;-separated spec
// (<name>[:key=value,...], keys scenario/policy/workload/clients/shards/
// epochs/period/seed/weight/sub-batch) hosts one independent serving
// instance, all multiplexed on ONE shared executor; unset keys inherit
// the top-level flags (seed defaults to --seed + tenant position). Every
// tenant gets its own digest[<name>]= line and, with --csv out.csv, its
// own out.<name>.csv — per-tenant telemetry that is byte-identical to
// the same tenant served alone, at any --threads.
//
// Crash recovery (src/recovery/): --wal <path> writes a write-ahead
// epoch log — the run's full configuration, then every epoch's cut —
// alongside the run. --resume <path> recovers a crashed run from its
// WAL and serves only the remaining epochs, appending to the same file;
// the resumed run's digests are byte-identical to the uninterrupted
// run's. --resume takes the ENTIRE dynamics configuration from the WAL
// header, so configuration flags (--scenario, --seed, --epochs, ...)
// conflict with it; runtime knobs (--threads, --csv, --report-every,
// --quiet, --trace, --progress) remain legal. The pipeline setting is
// honored from the logged header (a v3 field) — a resumed pipelined run
// re-serves pipelined; passing --pipeline is legal only when the header
// agrees, and a contradiction exits 2. Inspect or re-execute a WAL
// offline with wal_replay_cli.
//
// Fault injection (src/faults/): --faults <spec> schedules typed faults
// (shard slowdowns, worker stalls, dropped telemetry, tenant brownouts,
// a mid-run crash point) whose activation windows are drawn from a
// seed-derived stream — every chaos run is bit-for-bit replayable. The
// spec is part of the dynamics configuration: it is recorded in the WAL
// header (so --resume rebuilds the exact schedule) and conflicts with
// --resume on the command line like any config flag. A crash clause
// exits 137 right after its commit point — compose with --wal and
// re-run with --resume to finish the run.
//
// Observability (src/trace/): --trace <path> records the run's binary
// trace (epoch/sub-batch/publish spans, scheduler rounds, WAL appends,
// counter samples) for offline analysis with trace_dump_cli. Tracing is
// wall-clock telemetry only: digests with and without --trace are
// byte-identical. --progress <n> prints a stderr heartbeat every n
// epochs (epochs/s and the last route_p99) — never part of the digest
// or the CSV.
#include <algorithm>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.h"
#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

constexpr const char* kPolicyGrammar =
    "policies: replicator | uniform-linear | alpha:<a> | logit:<c> |\n"
    "          naive | relative-slack[:<s>] | safe\n";
constexpr const char* kWorkloadGrammar =
    "workloads: poisson:<rate> | bursty:<on>,<off>,<on_epochs>,<off_epochs>"
    " |\n           diurnal:<base>,<amplitude>,<day> | closed-loop:<n> |\n"
    "           closed-loop-lat:<clients>,<think>\n";
constexpr const char* kTenantGrammar =
    "tenants:   <name>[:key=value,...][;<name>...] with keys scenario,\n"
    "           policy, workload, clients, shards, epochs, period, seed,\n"
    "           weight, sub-batch (count or auto); unset keys inherit the\n"
    "           top-level flags\n";
constexpr const char* kRecoveryGrammar =
    "recovery:  --wal <path> logs every epoch cut to a write-ahead log;\n"
    "           --resume <path> continues a crashed run from its WAL\n"
    "           (configuration flags conflict — the WAL header is the\n"
    "           configuration; --threads/--csv/--report-every/--quiet ok;\n"
    "           the logged pipeline setting is honored, --pipeline must\n"
    "           agree with it)\n";
constexpr const char* kTraceGrammar =
    "tracing:   --trace <path> records a binary trace for trace_dump_cli\n"
    "           (digest-neutral); --progress <n> prints a stderr\n"
    "           heartbeat every n epochs (epochs/s, last route_p99)\n";
constexpr const char* kFaultGrammar =
    "faults:    --faults \"<clause>[;<clause>...]\" with clauses\n"
    "           slow:shard=S,us=U[,tenant=T][,at=E][,for=N] |\n"
    "           stall:workers=W,ms=M[,at=G][,for=N] |\n"
    "           drop-telemetry[:tenant=T][,at=E][,for=N] |\n"
    "           brownout:shed=F[,tenant=T][,at=E][,for=N] |\n"
    "           crash:at=N | none; omitted at/for windows are drawn\n"
    "           from a seed-derived stream (deterministic chaos)\n";

/// The flags that ARE the run's dynamics configuration — all of them
/// recorded in the WAL header, hence all of them conflicts with --resume.
const std::set<std::string> kConfigFlags = {
    "scenario", "policy",    "workload", "tenants", "period",
    "epochs",   "clients",   "shards",   "sub-batch",
    "seed",     "deterministic", "faults"};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  route_server_cli run [--scenario <name>] [--policy <spec>]\n"
      "                       [--period <T>] [--epochs <n>] [--clients <n>]\n"
      "                       [--workload <spec>] [--shards <k>]\n"
      "                       [--sub-batch <q>|auto] [--threads <k>]\n"
      "                       [--pin] [--pipeline]\n"
      "                       [--seed <s>] [--deterministic] [--csv <path>]\n"
      "                       [--tenants <spec>[;<spec>...]]\n"
      "                       [--wal <path> | --resume <path>]\n"
      "                       [--faults <spec>] [--trace <path>]\n"
      "                       [--progress <n>] [--report-every <n>]\n"
      "                       [--quiet]\n"
      "  route_server_cli list\n"
      << kPolicyGrammar << kWorkloadGrammar << kTenantGrammar
      << kRecoveryGrammar << kTraceGrammar << kFaultGrammar;
  std::exit(2);
}

int do_list() {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  Table table({"scenario", "description"});
  for (const std::string& name : registry.names()) {
    table.add_row({name, registry.at(name).description});
  }
  table.print(std::cout);
  std::cout << '\n' << kPolicyGrammar << kWorkloadGrammar << kTenantGrammar
            << kRecoveryGrammar << kTraceGrammar << kFaultGrammar;
  return 0;
}

/// The --progress heartbeat: epochs/s and the last route_p99, to stderr
/// only — wall-clock chatter that never reaches the digest or the CSV.
class ProgressMeter {
 public:
  explicit ProgressMeter(std::size_t every) : every_(every) {}

  void tick(const EpochSummary& summary) {
    ++count_;
    if (every_ == 0 || count_ % every_ != 0) return;
    // safe_rate: a first tick inside the clock's resolution must not
    // print inf epochs/s (or divide by zero).
    const double rate =
        cli::safe_rate(static_cast<double>(count_), watch_.seconds());
    std::cerr << "progress: " << count_ << " epochs, " << fmt(rate, 1)
              << " epochs/s, last route_p99 " << fmt(summary.route_p99, 4)
              << "\n";
  }

 private:
  std::size_t every_;
  std::size_t count_ = 0;
  Stopwatch watch_;
};

/// Routes std::invalid_argument from catalogue/grammar factories into
/// UsageError (exit 2 + usage text), like bad flag values.
template <typename Make>
auto usage_error(const Make& make) {
  try {
    return make();
  } catch (const std::invalid_argument& e) {
    throw cli::UsageError(e.what());
  }
}

/// "epochs.csv" + "a" -> "epochs.a.csv" (no extension: "out" -> "out.a").
std::string tenant_csv_path(const std::string& base,
                            const std::string& name) {
  const std::size_t dot = base.find_last_of('.');
  const std::size_t slash = base.find_last_of("/\\");
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + "." + name;
  }
  return base.substr(0, dot) + "." + name + base.substr(dot);
}

/// Materializes the manifest's --faults spec against the run's seed and
/// epoch horizon (max over tenants). Fresh and resumed runs call this
/// with the same manifest bits — the WAL header carries the spec — so a
/// resumed chaos run rebuilds the crashed run's exact fault timing.
/// Returns an empty schedule for a healthy manifest.
faults::FaultSchedule make_fault_schedule(
    const recovery::RunManifest& manifest, bool quiet) {
  if (manifest.faults.empty()) return {};
  std::size_t epochs = 0;
  for (const recovery::TenantManifest& tenant : manifest.tenants) {
    epochs = std::max(epochs, tenant.options.epochs);
  }
  faults::FaultSchedule schedule = usage_error([&] {
    return faults::FaultSchedule::materialize(
        faults::parse_fault_plan(manifest.faults),
        manifest.tenants.front().options.seed, epochs);
  });
  if (!quiet) {
    std::cout << "faults: " << manifest.faults << " ("
              << schedule.faults().size() << " windows)\n";
  }
  return schedule;
}

/// The live objects behind one tenant manifest. Everything a tenant
/// borrows must outlive the registry's run; hosts live in a deque so
/// addresses stay stable while we append.
struct Host {
  Instance instance;
  Policy policy;
  WorkloadPtr workload;
};

/// Rebuilds a manifest's instance/policy/workload exactly as a fresh run
/// would: same scenario registry, same seed-derived scenario Rng, same
/// grammar factories — the construction order the resume contract pins.
Host make_host(const recovery::TenantManifest& manifest,
               const ScenarioRegistry& registry) {
  cli::require_known(manifest.scenario, registry.names(), "scenario");
  Rng scenario_rng(manifest.options.seed);
  Instance instance = registry.at(manifest.scenario).make(scenario_rng);
  Policy policy = usage_error([&] {
    return named_policy(manifest.policy)
        .make(instance, manifest.options.update_period);
  });
  WorkloadPtr workload =
      usage_error([&] { return make_workload(manifest.workload); });
  return Host{std::move(instance), std::move(policy), std::move(workload)};
}

void print_resume_banner(const recovery::RecoveredRun& state, bool quiet) {
  if (quiet) return;
  if (state.truncated) {
    std::cout << "wal: discarded uncommitted tail (" << state.note << ")\n";
  }
  std::cout << "wal: resuming at round " << state.rounds;
  for (std::size_t i = 0; i < state.manifest.tenants.size(); ++i) {
    const recovery::TenantManifest& tenant = state.manifest.tenants[i];
    std::cout << (i == 0 ? ": " : ", ")
              << (tenant.name.empty() ? std::string("run") : tenant.name)
              << " " << state.cuts[i].size() << "/" << tenant.options.epochs
              << " epochs done";
  }
  std::cout << "\n";
}

/// Shared tail of every single-server run (fresh, WAL-logged or
/// resumed): summary lines, digest, CSV.
int print_single_result(const RouteServerResult& result,
                        const RouteServerOptions& options,
                        const std::string& csv_path, bool quiet) {
  std::cout << result.total_queries << " queries, "
            << result.total_migrations << " migrations over "
            << result.epochs.size() << " epochs; final gap "
            << fmt(result.final_gap, 6) << "\n";
  if (options.record_latency) {
    std::cout << "throughput " << fmt(result.queries_per_second / 1e6, 3)
              << " Mq/s (" << fmt(result.wall_seconds, 2) << " s wall), p50 "
              << fmt(result.p50_us, 1) << " us, p99 "
              << fmt(result.p99_us, 1) << " us\n";
  }
  std::cout << "digest=" << std::hex << telemetry_digest(result.epochs)
            << std::dec << "\n";
  if (!csv_path.empty()) {
    write_epoch_csv(csv_path, result.epochs, options.record_latency);
    if (!quiet) std::cout << "wrote " << csv_path << "\n";
  }
  return 0;
}

/// Shared tail of every multi-tenant run.
int print_multi_result(const MultiTenantResult& result, bool record_latency,
                       const std::string& csv_path, bool quiet) {
  for (const TenantResult& tenant : result.tenants) {
    std::cout << "tenant " << tenant.name << ": "
              << tenant.server.total_queries << " queries, "
              << tenant.server.total_migrations << " migrations over "
              << tenant.server.epochs.size() << " epochs; final gap "
              << fmt(tenant.server.final_gap, 6) << "\n";
    std::cout << "digest[" << tenant.name << "]=" << std::hex
              << telemetry_digest(tenant.server.epochs) << std::dec << "\n";
    if (!csv_path.empty()) {
      const std::string path = tenant_csv_path(csv_path, tenant.name);
      write_epoch_csv(path, tenant.server.epochs, record_latency);
      if (!quiet) std::cout << "wrote " << path << "\n";
    }
  }
  std::cout << result.total_queries() << " queries over "
            << result.total_epochs() << " epochs in " << result.rounds
            << " rounds";
  if (record_latency && result.wall_seconds > 0.0) {
    std::cout << "; " << fmt(result.wall_seconds, 2) << " s wall, "
              << fmt(static_cast<double>(result.total_epochs()) /
                         result.wall_seconds,
                     1)
              << " epochs/s aggregate";
  }
  std::cout << "\n";
  return 0;
}

EpochObserver make_epoch_observer(std::size_t total_epochs,
                                  std::size_t report_every, bool quiet) {
  if (quiet || report_every == 0) return nullptr;
  return [report_every, total_epochs](const EpochSummary& e) {
    if (e.epoch % report_every != 0 && e.epoch + 1 != total_epochs) {
      return;
    }
    std::cout << "  epoch " << e.epoch << ": " << e.queries
              << " queries, migration rate " << fmt(e.migration_rate, 4)
              << ", gap " << fmt(e.wardrop_gap, 6) << ", board latency "
              << fmt(e.board_latency, 4);
    if (e.queries_per_second > 0.0) {
      std::cout << ", " << fmt(e.queries_per_second / 1e6, 2)
                << " Mq/s, p99 " << fmt(e.p99_us, 1) << " us";
    }
    std::cout << "\n";
  };
}

/// Multi-tenant mode: host every --tenants spec on one shared executor.
/// `resume`, when set, replaces spec resolution entirely — the manifests
/// come from the WAL — and `wal_path` is the file being appended to.
int run_tenants_manifest(const std::string& wal_path,
                         const recovery::RunManifest& manifest,
                         const recovery::RecoveredRun* resume,
                         std::size_t threads, bool pin,
                         const std::string& csv_path,
                         std::size_t report_every, std::size_t progress_every,
                         bool quiet) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  const faults::FaultSchedule fault_schedule =
      make_fault_schedule(manifest, quiet);
  std::deque<Host> hosts;
  TenantRegistry tenants;
  for (const recovery::TenantManifest& tenant : manifest.tenants) {
    hosts.push_back(make_host(tenant, registry));
    // A feedback workload would silently fall back to the strict
    // schedule, so a logged pipeline header would misdescribe the run:
    // the WAL paths fail closed instead.
    if (manifest.pipeline && !wal_path.empty() &&
        hosts.back().workload->uses_feedback()) {
      throw cli::UsageError(
          "--pipeline cannot be combined with --wal/--resume for feedback "
          "workload '" + hosts.back().workload->name() + "' (tenant '" +
          tenant.name + "' falls back to the strict schedule)");
    }
    TenantOptions options;
    options.server = tenant.options;
    options.server.threads = threads;
    options.server.pipeline = manifest.pipeline;
    options.server.pin = pin;
    options.server.executor = nullptr;
    // Engine notices (the feedback pipeline fallback) print to stderr
    // unless --quiet; the library never writes there itself.
    if (!quiet) {
      options.server.notice = [](const std::string& message) {
        std::cerr << message << "\n";
      };
    }
    // All tenants share the run's one fault schedule; per-tenant clauses
    // select their victim with tenant= (registry index).
    options.server.faults =
        fault_schedule.empty() ? nullptr : &fault_schedule;
    options.weight = tenant.weight;
    usage_error([&] {
      tenants.add(tenant.name, hosts.back().instance, hosts.back().policy,
                  *hosts.back().workload, options);
      return 0;
    });
  }

  const bool record_latency = manifest.tenants.front().options.record_latency;
  if (!quiet) {
    std::cout << "route_server: " << tenants.size()
              << " tenants on one executor (threads=" << threads
              << (record_latency ? "" : ", deterministic") << ")\n";
  }

  TenantObserver observer = nullptr;
  if (!quiet && report_every > 0) {
    observer = [&tenants, report_every](std::size_t tenant,
                                        const EpochSummary& e) {
      if (e.epoch % report_every != 0) return;
      std::cout << "  [" << tenants.name(tenant) << "] epoch " << e.epoch
                << ": " << e.queries << " queries, migration rate "
                << fmt(e.migration_rate, 4) << ", gap "
                << fmt(e.wardrop_gap, 6) << "\n";
    };
  }
  if (progress_every > 0) {
    // Heartbeat counts epochs across ALL tenants (the host's serving
    // rate), chained in front of the reporting observer.
    auto meter = std::make_shared<ProgressMeter>(progress_every);
    observer = [meter, inner = std::move(observer)](
                   std::size_t tenant, const EpochSummary& e) {
      meter->tick(e);
      if (inner) inner(tenant, e);
    };
  }

  std::optional<recovery::WalLog> log;
  RegistryResume registry_state;
  const RegistryResume* resume_state = nullptr;
  if (resume != nullptr) {
    print_resume_banner(*resume, quiet);
    log.emplace(wal_path, *resume);
    registry_state = recovery::registry_resume(*resume);
    resume_state = &registry_state;
  } else if (!wal_path.empty()) {
    log.emplace(wal_path, manifest);
  }

  Executor executor(threads, pin);
  if (!fault_schedule.empty()) executor.set_fault_schedule(&fault_schedule);
  const MultiTenantResult result =
      tenants.run(executor, observer,
                  log ? log->round_observer() : RoundCutObserver{},
                  resume_state);
  if (log) log->finish();
  return print_multi_result(result, record_latency, csv_path, quiet);
}

/// Resolves --tenants specs against the top-level defaults into the WAL
/// manifest shape (also used WITHOUT a WAL — the manifest is simply the
/// resolved configuration).
recovery::RunManifest resolve_tenant_manifest(
    const std::string& tenants_flag, const std::string& default_scenario,
    const std::string& default_policy, const std::string& default_workload,
    const RouteServerOptions& defaults) {
  const std::vector<TenantSpec> specs =
      usage_error([&] { return parse_tenant_specs(tenants_flag); });
  recovery::RunManifest manifest;
  manifest.multi_tenant = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TenantSpec& spec = specs[i];
    recovery::TenantManifest tenant;
    tenant.name = spec.name;
    tenant.options = defaults;
    tenant.options.executor = nullptr;
    if (spec.clients) tenant.options.num_clients = *spec.clients;
    if (spec.shards) tenant.options.shards = *spec.shards;
    if (spec.epochs) tenant.options.epochs = *spec.epochs;
    if (spec.period) tenant.options.update_period = *spec.period;
    tenant.options.seed =
        spec.seed ? *spec.seed : defaults.seed + i;  // distinct by default
    if (spec.sub_batch) {
      tenant.options.sub_batch_queries = *spec.sub_batch;
      tenant.options.sub_batch_auto = false;
    } else if (spec.sub_batch_auto) {
      tenant.options.sub_batch_auto = true;
    }
    tenant.weight = spec.weight ? *spec.weight : 1;
    tenant.scenario =
        spec.scenario.empty() ? default_scenario : spec.scenario;
    tenant.policy = spec.policy.empty() ? default_policy : spec.policy;
    tenant.workload =
        spec.workload.empty() ? default_workload : spec.workload;
    if (tenant.workload.empty()) {
      tenant.workload =
          "poisson:" + std::to_string(tenant.options.num_clients);
    }
    manifest.tenants.push_back(std::move(tenant));
  }
  return manifest;
}

/// Single-server run from a resolved manifest (fresh or resumed).
int run_single_manifest(const std::string& wal_path,
                        const recovery::RunManifest& manifest,
                        const recovery::RecoveredRun* resume,
                        std::size_t threads, bool pin,
                        const std::string& csv_path,
                        std::size_t report_every, std::size_t progress_every,
                        bool quiet) {
  const recovery::TenantManifest& self = manifest.tenants.front();
  RouteServerOptions options = self.options;
  options.threads = threads;
  options.pipeline = manifest.pipeline;
  options.pin = pin;
  options.executor = nullptr;
  // The engine routes its one-line notices (the feedback pipeline
  // fallback) through this sink instead of printing itself; --quiet
  // silences them like the rest of the chatter.
  if (!quiet) {
    options.notice = [](const std::string& message) {
      std::cerr << message << "\n";
    };
  }
  const faults::FaultSchedule fault_schedule =
      make_fault_schedule(manifest, quiet);
  if (!fault_schedule.empty()) options.faults = &fault_schedule;

  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  const Host host = make_host(self, registry);
  // Fail closed before the WAL file is created/appended: a feedback
  // workload falls back to the strict schedule, so a pipeline=1 header
  // would misdescribe the run.
  if (manifest.pipeline && !wal_path.empty() &&
      host.workload->uses_feedback()) {
    throw cli::UsageError(
        "--pipeline cannot be combined with --wal/--resume for feedback "
        "workload '" + host.workload->name() +
        "' (it falls back to the strict schedule)");
  }

  if (!quiet) {
    std::cout << "route_server: " << self.scenario << " ("
              << host.instance.describe() << ")\n  policy "
              << host.policy.name() << ", workload " << host.workload->name()
              << ", T=" << options.update_period << ", epochs="
              << options.epochs << ", clients=" << options.num_clients
              << ", shards=" << options.shards << ", threads="
              << options.threads
              << (options.record_latency ? "" : ", deterministic") << "\n";
  }

  std::optional<recovery::WalLog> log;
  std::span<const EngineCheckpoint> resume_cuts;
  if (resume != nullptr) {
    print_resume_banner(*resume, quiet);
    log.emplace(wal_path, *resume);
    resume_cuts = resume->cuts.front();
  } else if (!wal_path.empty()) {
    log.emplace(wal_path, manifest);
  }

  EpochObserver observer =
      make_epoch_observer(options.epochs, report_every, quiet);
  if (progress_every > 0) {
    auto meter = std::make_shared<ProgressMeter>(progress_every);
    observer = [meter, inner = std::move(observer)](const EpochSummary& e) {
      meter->tick(e);
      if (inner) inner(e);
    };
  }

  RouteServer server(host.instance, host.policy, *host.workload);
  const RouteServerResult result = server.run(
      FlowVector::uniform(host.instance), options, observer,
      log ? log->single_observer() : CutObserver{}, resume_cuts);
  if (log) log->finish();
  return print_single_result(result, options, csv_path, quiet);
}

/// --resume: the WAL header is the configuration; serve what remains.
/// The header's pipeline flag is honored — a pipelined run resumes
/// pipelined, a strict one strict. An explicit --pipeline is legal only
/// when it agrees with the header (exit 2 on contradiction, like any
/// config flag fighting the WAL); --pin passes through (a runtime knob
/// like --threads).
int do_resume(const std::string& path, std::size_t threads,
              bool pipeline_flag, bool pin, const std::string& csv_path,
              std::size_t report_every, std::size_t progress_every,
              bool quiet) {
  recovery::RecoveredRun state;
  try {
    state = recovery::recover_wal(path);
  } catch (const std::runtime_error& e) {
    throw cli::UsageError(e.what());
  }
  if (pipeline_flag && !state.manifest.pipeline) {
    throw cli::UsageError(
        "--pipeline contradicts the WAL header (the logged run served the "
        "strict schedule); a resumed run honors the logged setting");
  }

  if (state.clean_shutdown) {
    // Nothing to serve: report the completed run's digests and succeed —
    // retry-after-crash loops can re-run the same command line safely.
    std::cout << "wal: run already completed cleanly; nothing to resume\n";
    for (std::size_t i = 0; i < state.manifest.tenants.size(); ++i) {
      const std::string& name = state.manifest.tenants[i].name;
      if (name.empty()) {
        std::cout << "digest=";
      } else {
        std::cout << "digest[" << name << "]=";
      }
      std::cout << std::hex << state.digests[i] << std::dec << "\n";
    }
    return 0;
  }

  if (state.manifest.multi_tenant) {
    return run_tenants_manifest(path, state.manifest, &state, threads, pin,
                                csv_path, report_every, progress_every,
                                quiet);
  }
  return run_single_manifest(path, state.manifest, &state, threads, pin,
                             csv_path, report_every, progress_every, quiet);
}

/// Starts the recorder for --trace and guarantees the trailer is written
/// on every exit path (including UsageError/exception unwinds).
class TraceScope {
 public:
  explicit TraceScope(const std::string& path) {
    if (path.empty()) return;
    cli::require_writable(path, "--trace");
    trace::start(path, "route_server_cli");
    started_ = true;
  }
  ~TraceScope() {
    if (started_) trace::stop();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool started_ = false;
};

int do_run(const std::map<std::string, std::string>& flags) {
  std::string scenario_name = "braess";
  std::string policy_name = "replicator";
  std::string workload_spec;  // default derived from --clients below
  std::string tenants_flag;
  bool tenants_given = false;  // an EMPTY --tenants is "zero tenants"
  RouteServerOptions options;
  options.epochs = 50;
  std::string csv_path;
  std::string trace_path;
  std::string faults_spec;
  std::size_t report_every = 10;
  std::size_t progress_every = 0;
  bool quiet = false;
  cli::RecoveryFlags recovery_flags;

  for (const auto& [key, value] : flags) {
    if (key == "scenario") {
      scenario_name = value;
    } else if (key == "policy") {
      policy_name = value;
    } else if (key == "workload") {
      workload_spec = value;
    } else if (key == "tenants") {
      tenants_flag = value;
      tenants_given = true;
    } else if (key == "period") {
      options.update_period = cli::parse_number(value, "--period");
    } else if (key == "epochs") {
      options.epochs = cli::parse_count(value, "--epochs");
    } else if (key == "clients") {
      options.num_clients = cli::parse_count(value, "--clients");
    } else if (key == "shards") {
      options.shards = cli::parse_count(value, "--shards");
    } else if (key == "sub-batch") {
      if (value == "auto") {
        options.sub_batch_auto = true;
      } else {
        options.sub_batch_queries = cli::parse_count(value, "--sub-batch");
      }
    } else if (key == "threads") {
      options.threads = cli::parse_count(value, "--threads");
    } else if (key == "pin") {
      options.pin = true;
    } else if (key == "pipeline") {
      options.pipeline = true;
    } else if (key == "seed") {
      options.seed = cli::parse_count(value, "--seed");
    } else if (key == "deterministic") {
      options.record_latency = false;
    } else if (key == "csv") {
      csv_path = value;
    } else if (key == "wal") {
      recovery_flags.wal = value;
    } else if (key == "resume") {
      recovery_flags.resume = value;
    } else if (key == "trace") {
      trace_path = value;
    } else if (key == "faults") {
      // Eager grammar check: a typo'd spec must exit 2 before any epoch
      // is served (the schedule itself is materialized per run path).
      const faults::FaultPlan plan =
          usage_error([&] { return faults::parse_fault_plan(value); });
      faults_spec = plan.empty() ? std::string() : value;
    } else if (key == "progress") {
      progress_every = cli::parse_count(value, "--progress");
    } else if (key == "report-every") {
      report_every = cli::parse_count(value, "--report-every");
    } else if (key == "quiet") {
      quiet = true;
    } else {
      usage("unknown flag --" + key);
    }
  }
  cli::validate_recovery_flags(recovery_flags, flags, kConfigFlags);
  // --pipeline composes with --wal/--resume: cuts span the one-epoch
  // overlap and the v3 WAL header records the schedule. It is not in
  // kConfigFlags — on resume an AGREEING --pipeline stays legal (the
  // header is authoritative either way; do_resume rejects a
  // contradiction). The only hard rejection left is feedback workloads,
  // checked per run path once the workload is resolved.

  // --trace/--progress are runtime knobs (wall-clock telemetry only), so
  // like --threads/--csv they stay legal alongside --resume.
  const TraceScope trace_scope(trace_path);

  if (recovery_flags.resuming()) {
    return do_resume(recovery_flags.resume, options.threads,
                     options.pipeline, options.pin, csv_path, report_every,
                     progress_every, quiet);
  }

  if (tenants_given) {
    recovery::RunManifest manifest = resolve_tenant_manifest(
        tenants_flag, scenario_name, policy_name, workload_spec, options);
    manifest.faults = faults_spec;
    manifest.pipeline = options.pipeline;
    return run_tenants_manifest(recovery_flags.wal, manifest, nullptr,
                                options.threads, options.pin, csv_path,
                                report_every, progress_every, quiet);
  }

  // Default offered load: every client activates once per unit time on
  // average, the finite-population analogue of the paper's unit-rate
  // Poisson clocks.
  if (workload_spec.empty()) {
    std::ostringstream spec;
    spec << "poisson:" << options.num_clients;
    workload_spec = spec.str();
  }

  recovery::RunManifest manifest;
  manifest.multi_tenant = false;
  manifest.faults = faults_spec;
  manifest.pipeline = options.pipeline;
  recovery::TenantManifest self;
  self.scenario = scenario_name;
  self.policy = policy_name;
  self.workload = workload_spec;
  self.options = options;
  self.weight = 1;
  manifest.tenants.push_back(std::move(self));
  return run_single_manifest(recovery_flags.wal, manifest, nullptr,
                             options.threads, options.pin, csv_path,
                             report_every, progress_every, quiet);
}

int run_main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  const std::string& command = args[0];
  try {
    if (command == "list") return do_list();
    if (command == "run") {
      return do_run(cli::parse_flags(
          args, 1, {"quiet", "deterministic", "pin", "pipeline"}));
    }
  } catch (const cli::UsageError& e) {
    usage(e.what());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage("unknown command " + command);
}

}  // namespace
}  // namespace staleflow

int main(int argc, char** argv) { return staleflow::run_main(argc, argv); }
