// route_server_cli — run the online stale-routing service engine.
//
// Usage:
//   route_server_cli run [--scenario <name>] [--policy <spec>]
//                        [--period <T>] [--epochs <n>] [--clients <n>]
//                        [--workload <spec>] [--shards <k>]
//                        [--sub-batch <q>|auto] [--threads <k>]
//                        [--seed <s>] [--deterministic] [--csv <path>]
//                        [--tenants <spec>[;<spec>...]]
//                        [--report-every <n>] [--quiet]
//   route_server_cli list
//
// `list` prints the scenario catalogue plus the policy, workload and
// tenant grammars. `run` serves the workload for the configured number
// of epochs, printing per-epoch telemetry and a final summary including
// a digest of the deterministic telemetry (used by the CI golden test).
// With --deterministic, wall-clock latency recording is off and the CSV
// holds only deterministic columns — byte-identical for any --threads.
//
// --tenants switches to multi-tenant mode: each ;-separated spec
// (<name>[:key=value,...], keys scenario/policy/workload/clients/shards/
// epochs/period/seed/weight/sub-batch) hosts one independent serving
// instance, all multiplexed on ONE shared executor; unset keys inherit
// the top-level flags (seed defaults to --seed + tenant position). Every
// tenant gets its own digest[<name>]= line and, with --csv out.csv, its
// own out.<name>.csv — per-tenant telemetry that is byte-identical to
// the same tenant served alone, at any --threads.
#include <cstdlib>
#include <deque>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.h"
#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

constexpr const char* kPolicyGrammar =
    "policies: replicator | uniform-linear | alpha:<a> | logit:<c> |\n"
    "          naive | relative-slack[:<s>] | safe\n";
constexpr const char* kWorkloadGrammar =
    "workloads: poisson:<rate> | bursty:<on>,<off>,<on_epochs>,<off_epochs>"
    " |\n           diurnal:<base>,<amplitude>,<day> | closed-loop:<n> |\n"
    "           closed-loop-lat:<clients>,<think>\n";
constexpr const char* kTenantGrammar =
    "tenants:   <name>[:key=value,...][;<name>...] with keys scenario,\n"
    "           policy, workload, clients, shards, epochs, period, seed,\n"
    "           weight, sub-batch (count or auto); unset keys inherit the\n"
    "           top-level flags\n";

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  route_server_cli run [--scenario <name>] [--policy <spec>]\n"
      "                       [--period <T>] [--epochs <n>] [--clients <n>]\n"
      "                       [--workload <spec>] [--shards <k>]\n"
      "                       [--sub-batch <q>|auto] [--threads <k>]\n"
      "                       [--seed <s>] [--deterministic] [--csv <path>]\n"
      "                       [--tenants <spec>[;<spec>...]]\n"
      "                       [--report-every <n>] [--quiet]\n"
      "  route_server_cli list\n"
      << kPolicyGrammar << kWorkloadGrammar << kTenantGrammar;
  std::exit(2);
}

int do_list() {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  Table table({"scenario", "description"});
  for (const std::string& name : registry.names()) {
    table.add_row({name, registry.at(name).description});
  }
  table.print(std::cout);
  std::cout << '\n' << kPolicyGrammar << kWorkloadGrammar << kTenantGrammar;
  return 0;
}

/// Routes std::invalid_argument from catalogue/grammar factories into
/// UsageError (exit 2 + usage text), like bad flag values.
template <typename Make>
auto usage_error(const Make& make) {
  try {
    return make();
  } catch (const std::invalid_argument& e) {
    throw cli::UsageError(e.what());
  }
}

/// "epochs.csv" + "a" -> "epochs.a.csv" (no extension: "out" -> "out.a").
std::string tenant_csv_path(const std::string& base,
                            const std::string& name) {
  const std::size_t dot = base.find_last_of('.');
  const std::size_t slash = base.find_last_of("/\\");
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + "." + name;
  }
  return base.substr(0, dot) + "." + name + base.substr(dot);
}

/// Multi-tenant mode: host every --tenants spec on one shared executor.
int run_tenants(const std::string& tenants_flag,
                const std::string& default_scenario,
                const std::string& default_policy,
                const std::string& default_workload,
                const RouteServerOptions& defaults,
                const std::string& csv_path, std::size_t report_every,
                bool quiet) {
  const std::vector<TenantSpec> specs =
      usage_error([&] { return parse_tenant_specs(tenants_flag); });

  const ScenarioRegistry registry = ScenarioRegistry::builtin();

  // Everything a tenant borrows must outlive the registry's run; a deque
  // keeps addresses stable while we append.
  struct Host {
    Instance instance;
    Policy policy;
    WorkloadPtr workload;
  };
  std::deque<Host> hosts;
  TenantRegistry tenants;

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TenantSpec& spec = specs[i];
    TenantOptions options;
    options.server = defaults;
    options.server.executor = nullptr;
    if (spec.clients) options.server.num_clients = *spec.clients;
    if (spec.shards) options.server.shards = *spec.shards;
    if (spec.epochs) options.server.epochs = *spec.epochs;
    if (spec.period) options.server.update_period = *spec.period;
    options.server.seed =
        spec.seed ? *spec.seed : defaults.seed + i;  // distinct by default
    if (spec.sub_batch) {
      options.server.sub_batch_queries = *spec.sub_batch;
      options.server.sub_batch_auto = false;
    } else if (spec.sub_batch_auto) {
      options.server.sub_batch_auto = true;
    }
    if (spec.weight) options.weight = *spec.weight;

    const std::string scenario =
        spec.scenario.empty() ? default_scenario : spec.scenario;
    cli::require_known(scenario, registry.names(), "scenario");
    std::string workload_spec =
        spec.workload.empty() ? default_workload : spec.workload;
    if (workload_spec.empty()) {
      workload_spec =
          "poisson:" + std::to_string(options.server.num_clients);
    }

    Rng scenario_rng(options.server.seed);
    Instance instance = registry.at(scenario).make(scenario_rng);
    Policy policy = usage_error([&] {
      return named_policy(spec.policy.empty() ? default_policy : spec.policy)
          .make(instance, options.server.update_period);
    });
    WorkloadPtr workload =
        usage_error([&] { return make_workload(workload_spec); });
    hosts.push_back(
        Host{std::move(instance), std::move(policy), std::move(workload)});
    usage_error([&] {
      tenants.add(spec.name, hosts.back().instance, hosts.back().policy,
                  *hosts.back().workload, options);
      return 0;
    });
  }

  if (!quiet) {
    std::cout << "route_server: " << tenants.size()
              << " tenants on one executor (threads=" << defaults.threads
              << (defaults.record_latency ? "" : ", deterministic")
              << ")\n";
  }

  TenantObserver observer = nullptr;
  if (!quiet && report_every > 0) {
    observer = [&](std::size_t tenant, const EpochSummary& e) {
      if (e.epoch % report_every != 0) return;
      std::cout << "  [" << tenants.name(tenant) << "] epoch " << e.epoch
                << ": " << e.queries << " queries, migration rate "
                << fmt(e.migration_rate, 4) << ", gap "
                << fmt(e.wardrop_gap, 6) << "\n";
    };
  }

  Executor executor(defaults.threads);
  const MultiTenantResult result = tenants.run(executor, observer);

  for (const TenantResult& tenant : result.tenants) {
    std::cout << "tenant " << tenant.name << ": "
              << tenant.server.total_queries << " queries, "
              << tenant.server.total_migrations << " migrations over "
              << tenant.server.epochs.size() << " epochs; final gap "
              << fmt(tenant.server.final_gap, 6) << "\n";
    std::cout << "digest[" << tenant.name << "]=" << std::hex
              << telemetry_digest(tenant.server.epochs) << std::dec << "\n";
    if (!csv_path.empty()) {
      const std::string path = tenant_csv_path(csv_path, tenant.name);
      write_epoch_csv(path, tenant.server.epochs, defaults.record_latency);
      if (!quiet) std::cout << "wrote " << path << "\n";
    }
  }
  std::cout << result.total_queries() << " queries over "
            << result.total_epochs() << " epochs in " << result.rounds
            << " rounds";
  if (defaults.record_latency && result.wall_seconds > 0.0) {
    std::cout << "; " << fmt(result.wall_seconds, 2) << " s wall, "
              << fmt(static_cast<double>(result.total_epochs()) /
                         result.wall_seconds,
                     1)
              << " epochs/s aggregate";
  }
  std::cout << "\n";
  return 0;
}

int do_run(const std::map<std::string, std::string>& flags) {
  std::string scenario_name = "braess";
  std::string policy_name = "replicator";
  std::string workload_spec;  // default derived from --clients below
  std::string tenants_flag;
  bool tenants_given = false;  // an EMPTY --tenants is "zero tenants"
  RouteServerOptions options;
  options.epochs = 50;
  std::string csv_path;
  std::size_t report_every = 10;
  bool quiet = false;

  for (const auto& [key, value] : flags) {
    if (key == "scenario") {
      scenario_name = value;
    } else if (key == "policy") {
      policy_name = value;
    } else if (key == "workload") {
      workload_spec = value;
    } else if (key == "tenants") {
      tenants_flag = value;
      tenants_given = true;
    } else if (key == "period") {
      options.update_period = cli::parse_number(value, "--period");
    } else if (key == "epochs") {
      options.epochs = cli::parse_count(value, "--epochs");
    } else if (key == "clients") {
      options.num_clients = cli::parse_count(value, "--clients");
    } else if (key == "shards") {
      options.shards = cli::parse_count(value, "--shards");
    } else if (key == "sub-batch") {
      if (value == "auto") {
        options.sub_batch_auto = true;
      } else {
        options.sub_batch_queries = cli::parse_count(value, "--sub-batch");
      }
    } else if (key == "threads") {
      options.threads = cli::parse_count(value, "--threads");
    } else if (key == "seed") {
      options.seed = cli::parse_count(value, "--seed");
    } else if (key == "deterministic") {
      options.record_latency = false;
    } else if (key == "csv") {
      csv_path = value;
    } else if (key == "report-every") {
      report_every = cli::parse_count(value, "--report-every");
    } else if (key == "quiet") {
      quiet = true;
    } else {
      usage("unknown flag --" + key);
    }
  }

  if (tenants_given) {
    return run_tenants(tenants_flag, scenario_name, policy_name,
                       workload_spec, options, csv_path, report_every,
                       quiet);
  }

  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  cli::require_known(scenario_name, registry.names(), "scenario");

  // Default offered load: every client activates once per unit time on
  // average, the finite-population analogue of the paper's unit-rate
  // Poisson clocks.
  if (workload_spec.empty()) {
    std::ostringstream spec;
    spec << "poisson:" << options.num_clients;
    workload_spec = spec.str();
  }

  Rng scenario_rng(options.seed);
  const Instance instance = registry.at(scenario_name).make(scenario_rng);
  const Policy policy = usage_error([&] {
    return named_policy(policy_name).make(instance, options.update_period);
  });
  const WorkloadPtr workload =
      usage_error([&] { return make_workload(workload_spec); });

  if (!quiet) {
    std::cout << "route_server: " << scenario_name << " ("
              << instance.describe() << ")\n  policy " << policy.name()
              << ", workload " << workload->name() << ", T="
              << options.update_period << ", epochs=" << options.epochs
              << ", clients=" << options.num_clients << ", shards="
              << options.shards << ", threads=" << options.threads
              << (options.record_latency ? "" : ", deterministic") << "\n";
  }

  EpochObserver observer = nullptr;
  if (!quiet && report_every > 0) {
    observer = [&](const EpochSummary& e) {
      if (e.epoch % report_every != 0 && e.epoch + 1 != options.epochs) {
        return;
      }
      std::cout << "  epoch " << e.epoch << ": " << e.queries
                << " queries, migration rate " << fmt(e.migration_rate, 4)
                << ", gap " << fmt(e.wardrop_gap, 6) << ", board latency "
                << fmt(e.board_latency, 4);
      if (e.queries_per_second > 0.0) {
        std::cout << ", " << fmt(e.queries_per_second / 1e6, 2)
                  << " Mq/s, p99 " << fmt(e.p99_us, 1) << " us";
      }
      std::cout << "\n";
    };
  }

  RouteServer server(instance, policy, *workload);
  const RouteServerResult result =
      server.run(FlowVector::uniform(instance), options, observer);

  std::cout << result.total_queries << " queries, "
            << result.total_migrations << " migrations over "
            << result.epochs.size() << " epochs; final gap "
            << fmt(result.final_gap, 6) << "\n";
  if (options.record_latency) {
    std::cout << "throughput " << fmt(result.queries_per_second / 1e6, 3)
              << " Mq/s (" << fmt(result.wall_seconds, 2) << " s wall), p50 "
              << fmt(result.p50_us, 1) << " us, p99 "
              << fmt(result.p99_us, 1) << " us\n";
  }
  std::cout << "digest=" << std::hex << telemetry_digest(result.epochs)
            << std::dec << "\n";

  if (!csv_path.empty()) {
    write_epoch_csv(csv_path, result.epochs, options.record_latency);
    if (!quiet) std::cout << "wrote " << csv_path << "\n";
  }
  return 0;
}

int run_main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  const std::string& command = args[0];
  try {
    if (command == "list") return do_list();
    if (command == "run") {
      return do_run(cli::parse_flags(args, 1, {"quiet", "deterministic"}));
    }
  } catch (const cli::UsageError& e) {
    usage(e.what());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage("unknown command " + command);
}

}  // namespace
}  // namespace staleflow

int main(int argc, char** argv) { return staleflow::run_main(argc, argv); }
