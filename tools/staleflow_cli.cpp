// staleflow_cli — command-line front end for the library.
//
// Usage:
//   staleflow_cli info <instance-file>
//   staleflow_cli dot <instance-file>
//   staleflow_cli solve <instance-file> [--tolerance <gap>]
//   staleflow_cli poa <instance-file>
//   staleflow_cli simulate <instance-file> --policy <name> [--T <period>]
//                 [--horizon <t>] [--stop-gap <g>] [--trace]
//
// Policies: uniform-linear | replicator | logit:<c> | alpha:<a> |
//           relative-slack:<shift> | best-response
//
// Instance files use the text format documented in net/io.h (see also
// `examples/` and the README).
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cli_common.h"
#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  staleflow_cli info <instance-file>\n"
      "  staleflow_cli dot <instance-file>\n"
      "  staleflow_cli solve <instance-file> [--tolerance <gap>]\n"
      "  staleflow_cli poa <instance-file>\n"
      "  staleflow_cli report <instance-file> [--flow uniform|equilibrium]\n"
      "  staleflow_cli simulate <instance-file> --policy <name>\n"
      "                [--T <period>] [--horizon <t>] [--stop-gap <g>]\n"
      "                [--trace]\n"
      "policies: uniform-linear | replicator | logit:<c> | alpha:<a> |\n"
      "          relative-slack:<shift> | best-response\n";
  std::exit(2);
}

Policy make_policy(const Instance& inst, const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::optional<double> parameter =
      colon == std::string::npos
          ? std::nullopt
          : std::optional<double>(
                cli::parse_number(spec.substr(colon + 1), "policy parameter"));
  if (kind == "uniform-linear") return make_uniform_linear_policy(inst);
  if (kind == "replicator") {
    return make_replicator_policy(inst, parameter.value_or(0.0));
  }
  if (kind == "logit") {
    if (!parameter) usage("logit needs a parameter, e.g. logit:5");
    return make_logit_policy(inst, *parameter);
  }
  if (kind == "alpha") {
    if (!parameter) usage("alpha needs a parameter, e.g. alpha:0.5");
    return make_alpha_policy(*parameter);
  }
  if (kind == "relative-slack") {
    return make_relative_slack_policy(parameter.value_or(0.0));
  }
  usage("unknown policy " + spec);
}

int cmd_info(const Instance& inst) {
  std::cout << inst.describe() << "\n";
  std::cout << "safe update period at alpha = 1/l_max: "
            << inst.safe_update_period(1.0 / inst.max_latency()) << "\n";
  for (std::size_t c = 0; c < inst.commodity_count(); ++c) {
    const Commodity& commodity = inst.commodity(CommodityId{c});
    std::cout << "commodity " << c << ": v" << commodity.source.value
              << " -> v" << commodity.sink.value << ", demand "
              << commodity.demand << ", " << commodity.paths.size()
              << " paths\n";
  }
  double worst_elasticity = 0.0;
  for (std::size_t e = 0; e < inst.edge_count(); ++e) {
    worst_elasticity = std::max(
        worst_elasticity, max_elasticity(inst.latency(EdgeId{e})));
  }
  std::cout << "max latency elasticity: " << worst_elasticity << "\n";
  return 0;
}

int cmd_solve(const Instance& inst,
              const std::map<std::string, std::string>& flags) {
  FrankWolfeOptions options;
  if (const auto it = flags.find("tolerance"); it != flags.end()) {
    options.gap_tolerance = cli::parse_number(it->second, "--tolerance");
  }
  const FrankWolfeResult result = solve_equilibrium(inst, options);
  std::cout << "converged: " << fmt_bool(result.converged)
            << "  iterations: " << result.iterations
            << "  gap: " << fmt_sci(result.gap)
            << "  potential: " << fmt(result.potential, 8) << "\n";
  const FlowEvaluation eval = evaluate(inst, result.flow.values());
  std::cout << "average latency: " << fmt(eval.average_latency, 6) << "\n";
  for (std::size_t p = 0; p < inst.path_count(); ++p) {
    if (result.flow[PathId{p}] < 1e-9) continue;
    std::cout << "  P" << p << "  flow " << fmt(result.flow[PathId{p}], 6)
              << "  latency " << fmt(eval.path_latency[p], 6) << "  ("
              << inst.path(PathId{p}).describe(inst.graph()) << ")\n";
  }
  return result.converged ? 0 : 1;
}

int cmd_report(const Instance& inst,
               const std::map<std::string, std::string>& flags) {
  FlowVector flow = FlowVector::uniform(inst);
  if (const auto it = flags.find("flow"); it != flags.end()) {
    if (it->second == "equilibrium") {
      flow = solve_equilibrium(inst).flow;
    } else if (it->second != "uniform") {
      usage("--flow must be uniform or equilibrium");
    }
  }
  std::cout << describe_flow(inst, flow.values());
  return 0;
}

int cmd_poa(const Instance& inst) {
  const PriceOfAnarchyResult poa = price_of_anarchy(inst);
  std::cout << "equilibrium social cost: " << fmt(poa.equilibrium_cost, 8)
            << "\noptimal social cost:     " << fmt(poa.optimum_cost, 8)
            << "\nprice of anarchy:        " << fmt(poa.ratio, 6) << "\n";
  return 0;
}

int cmd_simulate(const Instance& inst,
                 const std::map<std::string, std::string>& flags) {
  const auto policy_it = flags.find("policy");
  if (policy_it == flags.end()) usage("simulate requires --policy");
  const std::string& policy_spec = policy_it->second;

  double horizon = 200.0;
  if (const auto it = flags.find("horizon"); it != flags.end()) {
    horizon = cli::parse_number(it->second, "--horizon");
  }
  double stop_gap = 0.0;
  if (const auto it = flags.find("stop-gap"); it != flags.end()) {
    stop_gap = cli::parse_number(it->second, "--stop-gap");
  }
  const bool trace = flags.count("trace") > 0;

  TrajectoryRecorder recorder(inst);
  SimulationResult result{FlowVector::uniform(inst)};

  if (policy_spec == "best-response") {
    BestResponseOptions options;
    options.update_period = 0.1;
    if (const auto it = flags.find("T"); it != flags.end()) {
      options.update_period = cli::parse_number(it->second, "--T");
    }
    options.horizon = horizon;
    options.stop_gap = stop_gap;
    const BestResponseSimulator sim(inst);
    result = sim.run(FlowVector::uniform(inst), options,
                     recorder.observer());
    std::cout << "policy: best response, T = " << options.update_period
              << "\n";
  } else {
    const Policy policy = make_policy(inst, policy_spec);
    SimulationOptions options;
    options.update_period =
        policy.smoothness()
            ? inst.safe_update_period(*policy.smoothness())
            : 0.1;
    if (const auto it = flags.find("T"); it != flags.end()) {
      options.update_period = cli::parse_number(it->second, "--T");
    }
    options.horizon = horizon;
    options.stop_gap = stop_gap;
    const FluidSimulator sim(inst, policy);
    result = sim.run(FlowVector::uniform(inst), options,
                     recorder.observer());
    std::cout << "policy: " << policy.name()
              << ", T = " << options.update_period << "\n";
  }

  if (trace) {
    Table table({"phase", "t", "potential", "gap", "avg latency"});
    const std::size_t stride =
        std::max<std::size_t>(recorder.samples().size() / 25, 1);
    for (std::size_t i = 0; i < recorder.samples().size(); i += stride) {
      const PhaseSample& s = recorder.samples()[i];
      table.add_row({fmt_int(static_cast<long long>(s.phase)),
                     fmt(s.time, 2), fmt(s.potential, 8), fmt_sci(s.gap),
                     fmt(s.average_latency, 6)});
    }
    table.print(std::cout);
  }
  std::cout << "simulated " << result.phases << " phases to t = "
            << result.final_time << "\nfinal gap: "
            << fmt_sci(result.final_gap)
            << "  final potential: " << fmt(result.final_potential, 8)
            << (result.stopped_by_gap ? "  (stopped by --stop-gap)" : "")
            << "\n";
  return 0;
}

int run(const std::vector<std::string>& args) {
  if (args.size() < 2) usage();
  const std::string& command = args[0];
  const Instance inst = load_instance(args[1]);
  const auto flags = cli::parse_flags(args, 2, {"trace"});

  if (command == "info") return cmd_info(inst);
  if (command == "dot") {
    std::cout << to_dot(inst);
    return 0;
  }
  if (command == "solve") return cmd_solve(inst, flags);
  if (command == "poa") return cmd_poa(inst);
  if (command == "report") return cmd_report(inst, flags);
  if (command == "simulate") return cmd_simulate(inst, flags);
  usage("unknown command " + command);
}

}  // namespace
}  // namespace staleflow

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return staleflow::run(args);
  } catch (const staleflow::cli::UsageError& e) {
    staleflow::usage(e.what());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
