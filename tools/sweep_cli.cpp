// sweep_cli — run declarative experiment sweeps from the command line.
//
// Usage:
//   sweep_cli run [--scenarios a,b,...] [--policies p,q,...]
//                 [--periods 0.05,0.1,...] [--replicas <n>] [--seed <s>]
//                 [--simulator fluid|round|agent] [--horizon <t>]
//                 [--stop-gap <g>] [--agents <n>] [--threads <k>]
//                 [--cells-csv <path>] [--summary-csv <path>] [--quiet]
//   sweep_cli list
//
// `list` prints the scenario catalogue and policy grammar. `run` expands
// the cartesian product scenarios x policies x periods x replicas,
// executes it on a thread pool and prints a scenario x policy summary
// table plus throughput. Results (and the CSVs) are bit-identical for any
// --threads value.
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  sweep_cli run [--scenarios a,b,...] [--policies p,q,...]\n"
      "                [--periods 0.05,0.1,...] [--replicas <n>]\n"
      "                [--seed <s>] [--simulator fluid|round|agent]\n"
      "                [--horizon <t>] [--stop-gap <g>] [--agents <n>]\n"
      "                [--threads <k>] [--cells-csv <path>]\n"
      "                [--summary-csv <path>] [--quiet]\n"
      "  sweep_cli list\n"
      "policies: replicator | uniform-linear | alpha:<a> | logit:<c> |\n"
      "          naive | relative-slack[:<s>] | safe\n";
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(
    const std::vector<std::string>& args, std::size_t from) {
  std::map<std::string, std::string> flags;
  for (std::size_t i = from; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) != 0) usage("unexpected argument " + args[i]);
    const std::string key = args[i].substr(2);
    if (key == "quiet") {
      flags[key] = "1";
    } else {
      if (i + 1 >= args.size()) usage("--" + key + " needs a value");
      flags[key] = args[++i];
    }
  }
  return flags;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

double number_or_die(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    usage("bad number for " + what + ": " + text);
  }
}

long long integer_or_die(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const long long value = std::stoll(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    usage("bad integer for " + what + ": " + text);
  }
}

int do_list() {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  Table table({"scenario", "description"});
  for (const std::string& name : registry.names()) {
    table.add_row({name, registry.at(name).description});
  }
  table.print(std::cout);
  std::cout << "\npolicies: replicator | uniform-linear | alpha:<a> | "
               "logit:<c> | naive |\n          relative-slack[:<s>] | safe\n";
  return 0;
}

int do_run(const std::map<std::string, std::string>& flags) {
  ExperimentSpec spec;
  spec.scenarios = {"two-link-pulse", "braess", "uniform-links-8",
                    "random-links-8"};
  std::vector<std::string> policy_names = {"replicator", "uniform-linear",
                                           "alpha:0.5", "logit:10", "safe"};
  spec.update_periods = {0.05, 0.1};
  spec.replicas = 3;

  std::size_t threads = 1;
  std::string cells_csv, summary_csv;
  bool quiet = false;

  for (const auto& [key, value] : flags) {
    if (key == "scenarios") {
      spec.scenarios = split_list(value);
    } else if (key == "policies") {
      policy_names = split_list(value);
    } else if (key == "periods") {
      spec.update_periods.clear();
      for (const std::string& item : split_list(value)) {
        spec.update_periods.push_back(number_or_die(item, "--periods"));
      }
    } else if (key == "replicas") {
      spec.replicas =
          static_cast<std::size_t>(integer_or_die(value, "--replicas"));
    } else if (key == "seed") {
      spec.base_seed =
          static_cast<std::uint64_t>(integer_or_die(value, "--seed"));
    } else if (key == "simulator") {
      spec.simulator = parse_simulator_kind(value);
    } else if (key == "horizon") {
      spec.horizon = number_or_die(value, "--horizon");
    } else if (key == "stop-gap") {
      spec.stop_gap = number_or_die(value, "--stop-gap");
    } else if (key == "agents") {
      spec.num_agents =
          static_cast<std::size_t>(integer_or_die(value, "--agents"));
    } else if (key == "threads") {
      threads = static_cast<std::size_t>(integer_or_die(value, "--threads"));
    } else if (key == "cells-csv") {
      cells_csv = value;
    } else if (key == "summary-csv") {
      summary_csv = value;
    } else if (key == "quiet") {
      quiet = true;
    } else {
      usage("unknown flag --" + key);
    }
  }

  for (const std::string& name : policy_names) {
    spec.policies.push_back(named_policy(name));
  }

  const SweepRunner runner;
  const std::size_t total = cell_count(spec);
  if (!quiet) {
    std::cout << "sweep: " << spec.scenarios.size() << " scenarios x "
              << spec.policies.size() << " policies x "
              << spec.update_periods.size() << " periods x " << spec.replicas
              << " replicas = " << total << " cells ("
              << to_string(spec.simulator) << ", threads=" << threads
              << ")\n";
  }

  SweepProgress progress = nullptr;
  if (!quiet) {
    progress = [total](std::size_t done, std::size_t) {
      if (done % 25 == 0 || done == total) {
        std::cerr << "  " << done << "/" << total << " cells\r";
        if (done == total) std::cerr << '\n';
      }
    };
  }

  const SweepResult result = runner.run(spec, threads, progress);
  const std::vector<GroupSummary> groups = summarise(result);

  summary_table(groups).print(std::cout);
  std::size_t errors = 0;
  for (const CellResult& cell : result.cells) {
    if (!cell.ok) ++errors;
  }
  if (errors > 0) {
    std::cout << "\n" << errors << " cell(s) failed; see ";
    std::cout << (cells_csv.empty() ? "--cells-csv output" : cells_csv)
              << " for messages\n";
  }
  if (!quiet) {
    std::cout << "\n" << result.cells.size() << " cells in "
              << fmt(result.wall_seconds, 2) << " s ("
              << fmt(result.cells_per_second(), 1) << " cells/s)\n";
  }

  if (!cells_csv.empty()) {
    write_cells_csv(cells_csv, result);
    if (!quiet) std::cout << "wrote " << cells_csv << "\n";
  }
  if (!summary_csv.empty()) {
    write_summary_csv(summary_csv, groups);
    if (!quiet) std::cout << "wrote " << summary_csv << "\n";
  }
  return errors == 0 ? 0 : 1;
}

int run_main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  const std::string& command = args[0];
  try {
    if (command == "list") return do_list();
    if (command == "run") return do_run(parse_flags(args, 1));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage("unknown command " + command);
}

}  // namespace
}  // namespace staleflow

int main(int argc, char** argv) { return staleflow::run_main(argc, argv); }
