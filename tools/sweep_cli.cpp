// sweep_cli — run declarative experiment sweeps from the command line.
//
// Usage:
//   sweep_cli run [--scenarios a,b,...] [--policies p,q,...]
//                 [--periods 0.05,0.1,...] [--replicas <n>] [--seed <s>]
//                 [--simulator fluid|round|agent|service] [--horizon <t>]
//                 [--stop-gap <g>] [--agents <n>]
//                 [--workloads w1,w2,...] [--shards 1,8,...]
//                 [--tenants 1,4,...] [--faults f1;f2;...] [--clients <n>]
//                 [--sub-batch <q>|auto] [--threads <k>] [--pin]
//                 [--cells-csv <path>] [--summary-csv <path>]
//                 [--hist-out <path>] [--trace <path>] [--quiet]
//   sweep_cli list
//
// `list` prints the scenario catalogue plus the policy and workload
// grammars. `run` expands the cartesian product scenarios x policies x
// periods x replicas — times workloads x shard counts x tenant counts x
// fault specs under `--simulator service`, which drives a full
// RouteServer epoch pipeline per cell (a TenantRegistry of co-scheduled
// replicas when the tenant count exceeds 1) for capacity planning —
// executes it on a thread pool and prints a scenario x policy summary
// table, throughput and the deterministic cell digest.
//
// The --faults axis (src/faults/) splits on ';' so one axis value can
// hold a multi-clause plan joined with '+', e.g.
//   --faults "none;brownout:shed=0.5+slow:shard=0,us=50"
// Each cell materializes its spec against the cell's own seed, so chaos
// cells pin to the same digest at any --threads. Crash/stall clauses
// are rejected here (crash kills the sweep process, stalls perturb the
// shared pool); use route_server_cli --faults for those.
//
// Unknown scenario/policy/workload
// names and mis-addressed axes (service axes without --simulator
// service, zero shard or tenant counts, bad fault clauses) are usage
// errors: exit 2 with
// the catalogue in hand. `--threads 0` means hardware concurrency.
// Results (and the CSVs) are bit-identical for any --threads value.
// --trace <path> records the sweep's binary trace (src/trace/) for
// offline analysis with trace_dump_cli; tracing never changes the
// digest.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_common.h"
#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

constexpr const char* kPolicyGrammar =
    "policies: replicator | uniform-linear | alpha:<a> | logit:<c> |\n"
    "          naive | relative-slack[:<s>] | safe\n";
constexpr const char* kWorkloadGrammar =
    "workloads (service simulator): poisson:<rate> |"
    " bursty:<on>,<off>,<on_epochs>,<off_epochs> |\n"
    "          diurnal:<base>,<amplitude>,<day> | closed-loop:<n> |"
    " closed-loop-lat:<clients>,<think>\n";
constexpr const char* kFaultGrammar =
    "faults (service simulator; ';'-separated axis values, clauses within\n"
    "        one value joined by '+'): none |"
    " slow:shard=<s>,us=<u>[,tenant=<t>][,at=<e>][,for=<n>] |\n"
    "          drop-telemetry[:tenant=<t>][,at=<e>][,for=<n>] |"
    " brownout:shed=<f>[,tenant=<t>][,at=<e>][,for=<n>]\n"
    "        (crash/stall clauses: route_server_cli --faults only)\n";

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  sweep_cli run [--scenarios a,b,...] [--policies p,q,...]\n"
      "                [--periods 0.05,0.1,...] [--replicas <n>]\n"
      "                [--seed <s>] [--simulator fluid|round|agent|service]\n"
      "                [--horizon <t>] [--stop-gap <g>] [--agents <n>]\n"
      "                [--workloads w1,w2,...] [--shards 1,8,...]\n"
      "                [--tenants 1,4,...] [--faults f1;f2;...]\n"
      "                [--clients <n>] [--sub-batch <q>|auto]\n"
      "                [--threads <k>] [--pin]\n"
      "                [--cells-csv <path>] [--summary-csv <path>]\n"
      "                [--hist-out <path>] [--trace <path>] [--quiet]\n"
      "  sweep_cli list\n"
      << kPolicyGrammar << kWorkloadGrammar << kFaultGrammar;
  std::exit(2);
}

int do_list() {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  Table table({"scenario", "description"});
  for (const std::string& name : registry.names()) {
    table.add_row({name, registry.at(name).description});
  }
  table.print(std::cout);
  std::cout << '\n' << kPolicyGrammar << kWorkloadGrammar << kFaultGrammar;
  return 0;
}

int do_run(const std::map<std::string, std::string>& flags) {
  ExperimentSpec spec;
  spec.scenarios = {"two-link-pulse", "braess", "uniform-links-8",
                    "random-links-8"};
  std::vector<std::string> policy_names = {"replicator", "uniform-linear",
                                           "alpha:0.5", "logit:10", "safe"};
  spec.update_periods = {0.05, 0.1};
  spec.replicas = 3;

  std::size_t threads = 1;
  bool pin = false;
  std::string cells_csv, summary_csv, hist_csv, trace_path;
  bool quiet = false;

  for (const auto& [key, value] : flags) {
    if (key == "scenarios") {
      spec.scenarios = cli::split_list(value);
    } else if (key == "policies") {
      policy_names = cli::split_list(value);
    } else if (key == "periods") {
      spec.update_periods.clear();
      for (const std::string& item : cli::split_list(value)) {
        spec.update_periods.push_back(cli::parse_number(item, "--periods"));
      }
    } else if (key == "replicas") {
      spec.replicas = cli::parse_count(value, "--replicas");
    } else if (key == "seed") {
      spec.base_seed = cli::parse_count(value, "--seed");
    } else if (key == "simulator") {
      // Unknown kinds are usage errors (exit 2, catalogue printed), not
      // plain runtime failures.
      try {
        spec.simulator = parse_simulator_kind(value);
      } catch (const std::invalid_argument& e) {
        throw cli::UsageError(e.what());
      }
    } else if (key == "horizon") {
      spec.horizon = cli::parse_number(value, "--horizon");
    } else if (key == "stop-gap") {
      spec.stop_gap = cli::parse_number(value, "--stop-gap");
    } else if (key == "agents") {
      spec.num_agents = cli::parse_count(value, "--agents");
    } else if (key == "workloads") {
      spec.workloads = cli::split_list(value);
    } else if (key == "shards") {
      spec.shard_counts.clear();
      for (const std::string& item : cli::split_list(value)) {
        spec.shard_counts.push_back(cli::parse_count(item, "--shards"));
      }
    } else if (key == "tenants") {
      spec.tenant_counts.clear();
      for (const std::string& item : cli::split_list(value)) {
        spec.tenant_counts.push_back(cli::parse_count(item, "--tenants"));
      }
    } else if (key == "faults") {
      // ';' splits axis values; clause lists within one value use '+'
      // (fault clauses contain commas, so ',' cannot separate values).
      spec.fault_specs = cli::split_list(value, ';');
    } else if (key == "clients") {
      spec.num_clients = cli::parse_count(value, "--clients");
    } else if (key == "sub-batch") {
      if (value == "auto") {
        spec.sub_batch_auto = true;
      } else {
        spec.sub_batch_queries = cli::parse_count(value, "--sub-batch");
      }
    } else if (key == "threads") {
      threads = cli::parse_count(value, "--threads");
    } else if (key == "pin") {
      pin = true;
    } else if (key == "cells-csv") {
      cells_csv = value;
    } else if (key == "summary-csv") {
      summary_csv = value;
    } else if (key == "hist-out") {
      hist_csv = value;
    } else if (key == "trace") {
      trace_path = value;
    } else if (key == "quiet") {
      quiet = true;
    } else {
      usage("unknown flag --" + key);
    }
  }

  // A service sweep with no explicit axes gets a small default
  // capacity-planning grid: open-loop load below and around saturation,
  // serial vs sharded serving.
  if (spec.simulator == SimulatorKind::kService) {
    if (spec.workloads.empty()) {
      spec.workloads = {"poisson:10000", "poisson:40000"};
    }
    if (spec.shard_counts.empty()) spec.shard_counts = {1, 8};
  }

  const SweepRunner runner;

  // Validate names eagerly, before any cell runs: a typo should fail with
  // the catalogue in hand, not deep inside the sweep.
  for (const std::string& name : spec.scenarios) {
    cli::require_known(name, runner.registry().names(), "scenario");
  }
  for (const std::string& name : policy_names) {
    try {
      spec.policies.push_back(named_policy(name));
    } catch (const std::invalid_argument& e) {
      usage(e.what());
    }
  }
  // Same for the whole spec: a mis-addressed axis (workloads under a
  // non-service simulator, a zero shard count, a bad workload spec) is a
  // usage error, not a mid-sweep surprise.
  try {
    expand(spec, runner.registry());
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }

  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::size_t total = cell_count(spec);
  if (!quiet) {
    std::cout << "sweep: " << spec.scenarios.size() << " scenarios x "
              << spec.policies.size() << " policies x "
              << spec.update_periods.size() << " periods x ";
    if (spec.simulator == SimulatorKind::kService) {
      std::cout << spec.workloads.size() << " workloads x "
                << spec.shard_counts.size() << " shard counts x ";
      if (!spec.tenant_counts.empty()) {
        std::cout << spec.tenant_counts.size() << " tenant counts x ";
      }
      if (!spec.fault_specs.empty()) {
        std::cout << spec.fault_specs.size() << " fault specs x ";
      }
    }
    std::cout << spec.replicas << " replicas = " << total << " cells ("
              << to_string(spec.simulator) << ", threads=" << threads
              << ")\n";
  }

  SweepProgress progress = nullptr;
  if (!quiet) {
    progress = [total](std::size_t done, std::size_t) {
      if (done % 25 == 0 || done == total) {
        std::cerr << "  " << done << "/" << total << " cells\r";
        if (done == total) std::cerr << '\n';
      }
    };
  }

  // Tracing brackets the sweep itself (not flag parsing/validation); the
  // recorder's stop() below writes the trailer even on a failed cell.
  if (!trace_path.empty()) {
    cli::require_writable(trace_path, "--trace");
    trace::start(trace_path, "sweep_cli");
  }
  // One shared executor for the whole sweep so --pin applies: lane i is
  // pinned to core i (where available). Placement/pinning are wall-clock
  // knobs — the cell digests are identical with or without them.
  Executor executor(threads, pin);
  SweepResult result;
  try {
    result = runner.run(spec, executor, progress);
  } catch (...) {
    if (!trace_path.empty()) trace::stop();
    throw;
  }
  if (!trace_path.empty()) trace::stop();

  const std::vector<GroupSummary> groups = summarise(result);

  summary_table(groups).print(std::cout);
  std::size_t errors = 0;
  for (const CellResult& cell : result.cells) {
    if (!cell.ok) ++errors;
  }
  if (errors > 0) {
    std::cout << "\n" << errors << " cell(s) failed; see ";
    std::cout << (cells_csv.empty() ? "--cells-csv output" : cells_csv)
              << " for messages\n";
  }
  if (!quiet) {
    std::cout << "\n" << result.cells.size() << " cells in "
              << fmt(result.wall_seconds, 2) << " s ("
              << fmt(result.cells_per_second(), 1) << " cells/s)\n";
  }
  // Deterministic digest of every cell's outcome — what the CI smoke and
  // golden tests pin (thread-count independent by contract).
  std::cout << "digest=" << std::hex << cells_digest(result) << std::dec
            << "\n";

  if (!cells_csv.empty()) {
    write_cells_csv(cells_csv, result);
    if (!quiet) std::cout << "wrote " << cells_csv << "\n";
  }
  if (!summary_csv.empty()) {
    write_summary_csv(summary_csv, groups);
    if (!quiet) std::cout << "wrote " << summary_csv << "\n";
  }
  if (!hist_csv.empty()) {
    write_hist_csv(hist_csv, result);
    if (!quiet) std::cout << "wrote " << hist_csv << "\n";
  }
  return errors == 0 ? 0 : 1;
}

int run_main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  const std::string& command = args[0];
  try {
    if (command == "list") return do_list();
    if (command == "run") {
      return do_run(cli::parse_flags(args, 1, {"quiet", "pin"}));
    }
  } catch (const cli::UsageError& e) {
    usage(e.what());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage("unknown command " + command);
}

}  // namespace
}  // namespace staleflow

int main(int argc, char** argv) { return staleflow::run_main(argc, argv); }
