// trace_dump_cli — decode and analyze binary trace files (src/trace/).
//
// Usage:
//   trace_dump_cli info <trace>
//   trace_dump_cli csv <trace> [--out <path>]
//   trace_dump_cli summary <trace> [--by kind|tenant|shard|worker|lane]
//
// `info` prints the trace's header, shutdown state and greppable
// event/counter totals (`events[<kind>]=<n>`, `counter[<name>]=<v>`) —
// the CI traced-run smoke greps these to assert recording invariants
// (epochs recorded == epochs served, local lane hits beating steals).
//
// `csv` writes one row per event: kind, tenant, epoch, worker, shard,
// lane, sub-batch index, begin/end timestamps and the span duration in
// microseconds — the raw material for external analysis.
//
// `summary` aggregates wall-clock span durations into exact
// util/log_histogram quantiles (p50/p99/p999 µs) per event type, or per
// event type crossed with tenant, shard, worker, or execution lane
// (--by). `--by lane` splits sub-batch spans by the pool lane that ran
// them ("main" is the caller helping while it waits); together with the
// pool.local_hits / pool.steals locality line this is the offline answer
// to "did placement stick" that the always-on recording makes available
// for every run.
//
// All modes read the trusted prefix of a torn trace (same recovery
// posture as the WAL scanner) and report the truncation; exit 0 even for
// truncated traces — a crash image is still analyzable — but exit 2 for
// files that are not traces at all.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cli_common.h"
#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  trace_dump_cli info <trace>\n"
      "  trace_dump_cli csv <trace> [--out <path>]\n"
      "  trace_dump_cli summary <trace> [--by kind|tenant|shard|worker|lane]\n"
      "\n"
      "info prints header + greppable event/counter totals; csv dumps\n"
      "one row per recorded span; summary reports exact p50/p99/p999\n"
      "span-duration quantiles (us) per event type (or crossed with\n"
      "tenant/shard/worker/lane via --by) plus the pool locality ratio.\n";
  std::exit(2);
}

trace::LoadedTrace load_or_usage(const std::string& path) {
  cli::require_readable(path, "trace");
  try {
    return trace::load_trace(path);
  } catch (const std::runtime_error& e) {
    throw cli::UsageError(e.what());
  }
}

void print_truncation(const trace::LoadedTrace& loaded) {
  if (loaded.truncated) {
    std::cout << "note: trace truncated at byte " << loaded.valid_bytes
              << " (" << loaded.note << ")\n";
  }
}

/// The shard a sub-batch span ran against (packed into arg bits 32..47);
/// 0 for every other kind.
std::uint64_t event_shard(const trace::TraceEvent& event) {
  return event.kind == trace::EventKind::kSubBatchSpan
             ? (event.arg >> 32) & 0xFFFF
             : 0;
}

/// The execution lane a sub-batch span ran on (arg bits 48..63), as a
/// label: "?" for pre-lane traces (code 0), "main" for a non-pool thread
/// helping (code 1), the worker lane number otherwise (code k+2); "-" for
/// every other event kind.
std::string event_lane(const trace::TraceEvent& event) {
  if (event.kind != trace::EventKind::kSubBatchSpan) return "-";
  const std::uint64_t code = event.arg >> 48;
  if (code == 0) return "?";
  if (code == 1) return "main";
  return std::to_string(code - 2);
}

/// Greppable placement-locality line from the final counter sample: how
/// many pool tasks ran on their submitted lane vs were stolen across.
void print_locality(const trace::LoadedTrace& loaded) {
  if (loaded.counter_batches.empty()) return;
  std::uint64_t local_hits = 0;
  std::uint64_t steals = 0;
  bool seen = false;
  for (const auto& [id, value] : loaded.counter_batches.back().values) {
    if (loaded.counter_names[id] == "pool.local_hits") {
      local_hits = value;
      seen = true;
    } else if (loaded.counter_names[id] == "pool.steals") {
      steals = value;
      seen = true;
    }
  }
  if (!seen) return;
  const std::uint64_t total = local_hits + steals;
  std::cout << "locality: pool.local_hits=" << local_hits
            << " pool.steals=" << steals << " local_ratio="
            << fmt(total == 0 ? 0.0
                              : static_cast<double>(local_hits) /
                                    static_cast<double>(total),
                   3)
            << "\n";
}

int do_info(const std::string& path) {
  const trace::LoadedTrace loaded = load_or_usage(path);
  std::cout << "trace: " << path << "\n"
            << "producer: " << loaded.producer << "\n"
            << "version=" << loaded.version
            << " clean_shutdown=" << (loaded.clean_shutdown ? 1 : 0)
            << " truncated=" << (loaded.truncated ? 1 : 0)
            << " valid_bytes=" << loaded.valid_bytes << "\n";
  print_truncation(loaded);
  if (loaded.clean_shutdown) {
    std::cout << "trailer: events=" << loaded.trailer_events
              << " dropped=" << loaded.trailer_dropped << "\n";
  }

  std::uint32_t workers = 0;
  std::map<std::string, std::size_t> kind_counts;
  for (const trace::LoadedEvent& event : loaded.events) {
    workers = std::max(workers, event.worker + 1);
    ++kind_counts[std::string(trace::event_kind_name(event.event.kind))];
  }
  std::cout << "events=" << loaded.events.size() << " workers=" << workers
            << "\n";
  for (const auto& [kind, count] : kind_counts) {
    std::cout << "events[" << kind << "]=" << count << "\n";
  }
  // Final counter values: the last sampling pass wins (values are
  // monotonic, so the last batch is the run total at the final sample).
  if (!loaded.counter_batches.empty()) {
    const trace::CounterBatch& last = loaded.counter_batches.back();
    for (const auto& [id, value] : last.values) {
      std::cout << "counter[" << loaded.counter_names[id] << "]=" << value
                << "\n";
    }
  }
  return 0;
}

int do_csv(const std::string& path,
           const std::map<std::string, std::string>& flags) {
  std::string out_path;
  for (const auto& [key, value] : flags) {
    if (key == "out") {
      out_path = value;
    } else {
      usage("unknown flag --" + key);
    }
  }
  const trace::LoadedTrace loaded = load_or_usage(path);

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) throw cli::UsageError("cannot write --out '" + out_path + "'");
  }
  std::ostream& out = out_path.empty() ? std::cout : file;

  out << "kind,tenant,epoch,worker,shard,lane,arg,value,begin_ns,end_ns,"
         "duration_us\n";
  for (const trace::LoadedEvent& loaded_event : loaded.events) {
    const trace::TraceEvent& e = loaded_event.event;
    out << trace::event_kind_name(e.kind) << ',' << e.tenant << ','
        << e.epoch << ',' << loaded_event.worker << ',' << event_shard(e)
        << ',' << event_lane(e) << ',' << e.arg << ',' << e.value << ','
        << e.begin_ns << ',' << e.end_ns << ','
        << fmt(static_cast<double>(e.end_ns - e.begin_ns) / 1e3, 3) << "\n";
  }
  if (!out_path.empty()) {
    std::cout << "wrote " << loaded.events.size() << " events to "
              << out_path << "\n";
  }
  print_truncation(loaded);
  return 0;
}

int do_summary(const std::string& path,
               const std::map<std::string, std::string>& flags) {
  std::string by = "kind";
  for (const auto& [key, value] : flags) {
    if (key == "by") {
      by = value;
      if (by != "kind" && by != "tenant" && by != "shard" && by != "worker" &&
          by != "lane") {
        usage("--by must be kind, tenant, shard, worker or lane");
      }
    } else {
      usage("unknown flag --" + key);
    }
  }
  const trace::LoadedTrace loaded = load_or_usage(path);

  // Exact log-bucket quantiles per group — the same histogram type the
  // digest contract uses for route latency, here over span durations.
  struct Group {
    LogHistogram hist{1e-3, 1e9};  // microseconds: 1 ns .. ~17 min
    std::uint64_t value_total = 0;
  };
  std::map<std::string, Group> groups;
  for (const trace::LoadedEvent& loaded_event : loaded.events) {
    const trace::TraceEvent& e = loaded_event.event;
    std::string key(trace::event_kind_name(e.kind));
    if (by == "tenant") {
      key += "/tenant=" + std::to_string(e.tenant);
    } else if (by == "shard") {
      key += "/shard=" + std::to_string(event_shard(e));
    } else if (by == "worker") {
      key += "/worker=" + std::to_string(loaded_event.worker);
    } else if (by == "lane") {
      key += "/lane=" + event_lane(e);
    }
    Group& group = groups[key];
    const double duration_us =
        static_cast<double>(e.end_ns - e.begin_ns) / 1e3;
    // Instants (publish events) record as zero-length spans; clamp into
    // the histogram's range so they count without skewing quantiles up.
    group.hist.record(std::max(duration_us, 1e-3));
    group.value_total += e.value;
  }

  Table table({"span", "count", "p50_us", "p99_us", "p999_us", "total_ms",
               "value_sum"});
  for (const auto& [key, group] : groups) {
    table.add_row({key, fmt_int(static_cast<long long>(group.hist.count())),
                   fmt(group.hist.quantile(0.5), 2),
                   fmt(group.hist.quantile(0.99), 2),
                   fmt(group.hist.quantile(0.999), 2),
                   fmt(group.hist.sum() / 1e3, 2),
                   fmt_int(static_cast<long long>(group.value_total))});
  }
  table.print(std::cout);
  print_locality(loaded);
  print_truncation(loaded);
  return 0;
}

int run_main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() < 2) usage();
  const std::string& command = args[0];
  const std::string& path = args[1];
  try {
    if (command == "info") {
      if (args.size() != 2) usage("info takes exactly one argument");
      return do_info(path);
    }
    if (command == "csv") {
      return do_csv(path, cli::parse_flags(args, 2, {}));
    }
    if (command == "summary") {
      return do_summary(path, cli::parse_flags(args, 2, {}));
    }
  } catch (const cli::UsageError& e) {
    usage(e.what());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage("unknown command " + command);
}

}  // namespace
}  // namespace staleflow

int main(int argc, char** argv) { return staleflow::run_main(argc, argv); }
