// wal_replay_cli — inspect and re-execute write-ahead epoch logs.
//
// Usage:
//   wal_replay_cli info <wal>
//   wal_replay_cli replay <wal> [--epoch <e>] [--epochs <k>]
//                         [--tenant <name>] [--threads <t>] [--quiet]
//
// `info` prints the WAL's manifest (per-tenant configuration, the
// run's mode line including the v3 header's pipeline flag — pipeline=1
// means committed cuts trail the crashed run's serving frontier by one
// epoch), the committed progress (cuts=<n> per tenant, rounds=<r>), the shutdown
// state, and one row per committed cut (its byte offset in the file and
// the epoch's route_p99, for correlating WAL cuts with trace spans) —
// greppable key=value fields, used by the CI crash smoke to poll how far
// a background run has progressed.
//
// `replay` is the point-in-time debugger: it restores one tenant's state
// at epoch cut e (--epoch, default 0) directly into an EpochEngine —
// no round scheduler, no other tenants — re-executes epochs [e, e+k)
// (--epochs, default: every committed epoch from e), and prints each
// re-executed epoch's single-epoch telemetry digest next to the digest
// recomputed from the WAL's recorded cut. The determinism contract makes
// the comparison exact: a re-executed epoch either matches its record
// bit-for-bit or the WAL does not describe this build's dynamics.
// Exit 0 = all replayed epochs match, 1 = a mismatch, 2 = usage error
// (missing/corrupt-beyond-recovery WAL, unknown tenant, out-of-range
// epoch window). Replay forces deterministic mode (no wall-clock
// recording): wall-clock fields are not replayable state and do not
// enter the digests.
#include <cstdlib>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "cli_common.h"
#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  wal_replay_cli info <wal>\n"
      "  wal_replay_cli replay <wal> [--epoch <e>] [--epochs <k>]\n"
      "                        [--tenant <name>] [--threads <t>] [--quiet]\n"
      "\n"
      "info prints the WAL manifest and committed progress (cuts=<n>,\n"
      "rounds=<r>); replay restores tenant state at epoch cut e and\n"
      "re-executes epochs [e, e+k), checking each against the recorded\n"
      "cuts (exit 1 on a mismatch).\n";
  std::exit(2);
}

template <typename Make>
auto usage_error(const Make& make) {
  try {
    return make();
  } catch (const std::invalid_argument& e) {
    throw cli::UsageError(e.what());
  }
}

recovery::RecoveredRun recover_or_usage(const std::string& path) {
  cli::require_readable(path, "WAL");
  try {
    return recovery::recover_wal(path);
  } catch (const std::runtime_error& e) {
    throw cli::UsageError(e.what());
  }
}

std::string display_name(const recovery::TenantManifest& tenant) {
  return tenant.name.empty() ? std::string("run") : tenant.name;
}

int do_info(const std::string& path) {
  const recovery::RecoveredRun state = recover_or_usage(path);
  std::cout << "wal: " << path << "\n"
            << "mode: "
            << (state.manifest.multi_tenant ? "multi-tenant"
                                            : "single-server")
            << " pipeline=" << (state.manifest.pipeline ? 1 : 0) << "\n"
            << "rounds=" << state.rounds
            << " clean_shutdown=" << (state.clean_shutdown ? 1 : 0)
            << " truncated=" << (state.truncated ? 1 : 0)
            << " valid_bytes=" << state.valid_bytes << "\n";
  if (state.truncated) std::cout << "note: " << state.note << "\n";
  for (std::size_t i = 0; i < state.manifest.tenants.size(); ++i) {
    const recovery::TenantManifest& tenant = state.manifest.tenants[i];
    const RouteServerOptions& o = tenant.options;
    std::cout << "tenant " << display_name(tenant)
              << ": scenario=" << tenant.scenario
              << " policy=" << tenant.policy
              << " workload=" << tenant.workload << " epochs=" << o.epochs
              << " clients=" << o.num_clients << " shards=" << o.shards
              << " seed=" << o.seed << " weight=" << tenant.weight
              << " cuts=" << state.cuts[i].size() << " digest=" << std::hex
              << state.digests[i] << std::dec << "\n";
    // Per-cut rows: where each committed cut's record starts in the file
    // (seekable, and correlatable with trace spans) and the epoch's
    // deterministic route_p99.
    for (std::size_t c = 0; c < state.cuts[i].size(); ++c) {
      const EpochSummary& summary = state.cuts[i][c].summary;
      std::cout << "cut[" << display_name(tenant)
                << "]: epoch=" << summary.epoch
                << " offset=" << state.cut_offsets[i][c]
                << " route_p99=" << fmt(summary.route_p99, 6) << "\n";
    }
  }
  return 0;
}

int do_replay(const std::string& path,
              const std::map<std::string, std::string>& flags) {
  std::size_t from_epoch = 0;
  bool epochs_given = false;
  std::size_t epoch_count = 0;
  std::string tenant_name;
  std::size_t threads = 1;
  bool quiet = false;
  for (const auto& [key, value] : flags) {
    if (key == "epoch") {
      from_epoch = cli::parse_count(value, "--epoch");
    } else if (key == "epochs") {
      epoch_count = cli::parse_count(value, "--epochs");
      epochs_given = true;
    } else if (key == "tenant") {
      tenant_name = value;
    } else if (key == "threads") {
      threads = cli::parse_count(value, "--threads");
    } else if (key == "quiet") {
      quiet = true;
    } else {
      usage("unknown flag --" + key);
    }
  }

  const recovery::RecoveredRun state = recover_or_usage(path);
  std::size_t tenant = 0;
  if (!tenant_name.empty()) {
    bool found = false;
    for (std::size_t i = 0; i < state.manifest.tenants.size(); ++i) {
      if (state.manifest.tenants[i].name == tenant_name) {
        tenant = i;
        found = true;
        break;
      }
    }
    if (!found) {
      throw cli::UsageError("no tenant '" + tenant_name + "' in this WAL");
    }
  }
  const recovery::TenantManifest& manifest = state.manifest.tenants[tenant];
  const std::vector<EngineCheckpoint>& cuts = state.cuts[tenant];

  if (from_epoch > cuts.size()) {
    throw cli::UsageError(
        "--epoch " + std::to_string(from_epoch) + " is past the committed "
        "prefix (" + std::to_string(cuts.size()) + " cuts in the WAL)");
  }
  if (!epochs_given) epoch_count = cuts.size() - from_epoch;
  if (from_epoch + epoch_count > cuts.size()) {
    throw cli::UsageError(
        "--epoch " + std::to_string(from_epoch) + " + --epochs " +
        std::to_string(epoch_count) + " exceeds the committed prefix (" +
        std::to_string(cuts.size()) + " cuts in the WAL)");
  }
  if (epoch_count == 0) {
    std::cout << "nothing to replay (0 epochs requested)\n";
    return 0;
  }

  // Rebuild the tenant's world exactly as the serving CLI does, then
  // drive its engine by hand: restore cuts [0, e), serve k more epochs.
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  cli::require_known(manifest.scenario, registry.names(), "scenario");
  Rng scenario_rng(manifest.options.seed);
  const Instance instance = registry.at(manifest.scenario).make(scenario_rng);
  const Policy policy = usage_error([&] {
    return named_policy(manifest.policy)
        .make(instance, manifest.options.update_period);
  });
  const WorkloadPtr workload =
      usage_error([&] { return make_workload(manifest.workload); });

  RouteServerOptions options = manifest.options;
  options.threads = threads;
  options.executor = nullptr;
  options.record_latency = false;  // replay is deterministic by definition
  // Replay always serves the strict schedule, even for a pipeline=1 WAL:
  // cut content is schedule-independent (pipelined cuts are captured at
  // the overlap boundary with the same bytes a strict run logs), and the
  // strict epoch-at-a-time loop is what the record-by-record comparison
  // below wants.
  options.pipeline = false;

  SnapshotStore store;
  EpochEngine engine(instance, policy, *workload, store);
  engine.begin(FlowVector::uniform(instance), options);
  engine.restore(std::span(cuts).subspan(0, from_epoch));

  if (!quiet) {
    std::cout << "replaying " << display_name(manifest) << " epochs ["
              << from_epoch << ", " << from_epoch + epoch_count << ") of "
              << manifest.scenario << "/" << manifest.policy << "\n";
  }

  Executor executor(threads);
  std::size_t mismatches = 0;
  for (std::size_t e = from_epoch; e < from_epoch + epoch_count; ++e) {
    TaskGraph graph;
    engine.add_epoch(graph);
    executor.run(graph);
    engine.finish_epoch(0.0, nullptr);
    const EngineCheckpoint replayed = engine.checkpoint();
    const std::uint64_t replay_digest =
        telemetry_digest(std::span(&replayed.summary, 1));
    const std::uint64_t recorded_digest =
        telemetry_digest(std::span(&cuts[e].summary, 1));
    const bool match = replay_digest == recorded_digest;
    if (!match) ++mismatches;
    if (!quiet || !match) {
      std::cout << "epoch " << e << ": digest=" << std::hex << replay_digest
                << std::dec << " queries=" << replayed.summary.queries
                << " gap=" << fmt(replayed.summary.wardrop_gap, 6) << " "
                << (match ? "match" : "MISMATCH (recorded ") ;
      if (!match) {
        std::cout << std::hex << recorded_digest << std::dec << ")";
      }
      std::cout << "\n";
    }
  }
  if (mismatches != 0) {
    std::cerr << "error: " << mismatches
              << " replayed epoch(s) diverged from the WAL\n";
    return 1;
  }
  if (!quiet) {
    std::cout << epoch_count << " epoch(s) replayed, all match the WAL\n";
  }
  return 0;
}

int run_main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() < 2) usage();
  const std::string& command = args[0];
  const std::string& path = args[1];
  try {
    if (command == "info") {
      if (args.size() != 2) usage("info takes exactly one argument");
      return do_info(path);
    }
    if (command == "replay") {
      return do_replay(path, cli::parse_flags(args, 2, {"quiet"}));
    }
  } catch (const cli::UsageError& e) {
    usage(e.what());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage("unknown command " + command);
}

}  // namespace
}  // namespace staleflow

int main(int argc, char** argv) { return staleflow::run_main(argc, argv); }
